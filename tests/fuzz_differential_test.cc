// Randomized query fuzzing: generates random XQ queries (not just random
// documents) and differentially checks GCX against the NaiveDom oracle.
// This is the strongest empirical check of Theorem 1 in the suite — the
// query generator composes for-loops, conditions, constructors, outputs
// and aggregates in arbitrary nestings.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/prng.h"
#include "core/engine.h"
#include "core/multi_engine.h"
#include "xq/parser.h"

namespace gcx {
namespace {

class QueryFuzzer {
 public:
  explicit QueryFuzzer(uint64_t seed) : rng_(seed) {}

  std::string Generate() {
    vars_ = {"$root"};
    depth_ = 0;
    return "<r>{ " + Expr() + " }</r>";
  }

 private:
  const char* Tag() {
    static const char* tags[] = {"a", "b", "c", "d", "p", "v"};
    return tags[rng_.Below(6)];
  }

  std::string Path(int max_steps) {
    std::string out;
    int steps = 1 + static_cast<int>(rng_.Below(static_cast<uint64_t>(max_steps)));
    for (int i = 0; i < steps; ++i) {
      if (i > 0) out += "/";
      if (rng_.Chance(250)) out += "/";  // doubles the slash: descendant
      if (i == steps - 1 && rng_.Chance(150)) {
        out += "text()";
        break;
      }
      out += rng_.Chance(150) ? "*" : Tag();
    }
    return out;
  }

  std::string VarPath(int max_steps) {
    const std::string& var = vars_[rng_.Below(vars_.size())];
    if (var == "$root") return "/" + Path(max_steps);
    return var + "/" + Path(max_steps);
  }

  std::string Operand() {
    if (rng_.Chance(400)) return std::to_string(rng_.Below(20));
    if (rng_.Chance(300)) return "\"w" + std::string(1, static_cast<char>('a' + rng_.Below(4))) + "\"";
    return VarPath(2);
  }

  std::string Cond(int budget) {
    if (budget <= 0 || rng_.Chance(350)) {
      if (rng_.Chance(500)) return "exists(" + VarPath(2) + ")";
      static const char* ops[] = {"=", "!=", "<", "<=", ">", ">="};
      return Operand() + " " + ops[rng_.Below(6)] + " " + Operand();
    }
    switch (rng_.Below(3)) {
      case 0:
        return "not(" + Cond(budget - 1) + ")";
      case 1:
        return "(" + Cond(budget - 1) + " and " + Cond(budget - 1) + ")";
      default:
        return "(" + Cond(budget - 1) + " or " + Cond(budget - 1) + ")";
    }
  }

  std::string Expr() {
    ++depth_;
    std::string out = ExprInner();
    --depth_;
    return out;
  }

  std::string ExprInner() {
    uint64_t pick = rng_.Below(depth_ > 3 ? 4u : 10u);
    switch (pick) {
      case 0:
        return "()";
      case 1:
        return VarPath(2);  // path output
      case 2:
        return rng_.Chance(500) ? "count(" + VarPath(2) + ")"
                                : "sum(" + VarPath(2) + ")";
      case 3:
        return "<" + std::string(Tag()) + "/>";
      case 4:
      case 5: {  // for-loop
        std::string var = "$v" + std::to_string(vars_.size());
        std::string source = VarPath(2);
        // text() steps cannot be iterated into sub-paths meaningfully but
        // are legal; keep them.
        vars_.push_back(var);
        std::string body = Expr();
        vars_.pop_back();
        return "for " + var + " in " + source + " return " + body;
      }
      case 6: {  // if
        std::string cond = Cond(1);
        std::string then_branch = Expr();
        std::string else_branch = rng_.Chance(500) ? Expr() : "()";
        return "if (" + cond + ") then " + then_branch + " else " +
               else_branch;
      }
      case 7: {  // constructor with content
        return "<w>{ " + Expr() + " }</w>";
      }
      default: {  // sequence
        return "(" + Expr() + ", " + Expr() + ")";
      }
    }
  }

  Prng rng_;
  std::vector<std::string> vars_;
  int depth_ = 0;
};

std::string RandomDocument(uint64_t seed) {
  Prng rng(seed);
  const char* tags[] = {"a", "b", "c", "d", "p", "v"};
  std::string out;
  std::function<void(int)> emit = [&](int depth) {
    const char* tag = tags[rng.Below(6)];
    out += "<";
    out += tag;
    out += ">";
    if (rng.Chance(350)) out += std::to_string(rng.Below(20));
    if (rng.Chance(200)) {
      out += "w";
      out += static_cast<char>('a' + rng.Below(4));
    }
    if (depth < 5) {
      uint64_t children = rng.Below(4);
      for (uint64_t i = 0; i < children; ++i) emit(depth + 1);
    }
    out += "</";
    out += tag;
    out += ">";
  };
  out += "<root>";
  uint64_t top = 2 + rng.Below(4);
  for (uint64_t i = 0; i < top; ++i) emit(0);
  out += "</root>";
  return out;
}

class FuzzDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzDifferentialTest, RandomQueriesMatchOracle) {
  QueryFuzzer fuzzer(GetParam());
  for (int round = 0; round < 8; ++round) {
    std::string query = fuzzer.Generate();
    auto parsed = ParseQuery(query);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << query;

    std::string doc = RandomDocument(GetParam() * 131 + round);
    if (std::getenv("GCX_FUZZ_VERBOSE") != nullptr) {
      std::cerr << "QUERY: " << query << "\nDOC: " << doc << "\n";
    }

    EngineOptions naive;
    naive.mode = EngineMode::kNaiveDom;
    auto oracle = CompiledQuery::Compile(query, naive);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString() << "\n" << query;
    Engine engine;
    std::ostringstream expected;
    auto oracle_stats = engine.Execute(*oracle, doc, &expected);
    ASSERT_TRUE(oracle_stats.ok())
        << oracle_stats.status().ToString() << "\n" << query;

    for (int mask : {0, 3, 7, 15}) {
      EngineOptions options;
      options.enable_gc = (mask & 1) != 0;
      options.aggregate_roles = (mask & 2) != 0;
      options.eliminate_redundant_roles = (mask & 4) != 0;
      options.early_updates = (mask & 8) != 0;
      auto compiled = CompiledQuery::Compile(query, options);
      ASSERT_TRUE(compiled.ok())
          << compiled.status().ToString() << "\n" << query;
      std::ostringstream actual;
      auto stats = engine.Execute(*compiled, doc, &actual);
      ASSERT_TRUE(stats.ok()) << stats.status().ToString() << "\n"
                              << query << "\n" << doc;
      ASSERT_EQ(actual.str(), expected.str())
          << "mask=" << mask << "\nquery: " << query << "\ndoc: " << doc;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferentialTest,
                         ::testing::Range<uint64_t>(0, 30));

// --- batched vs solo multi-query execution ----------------------------------
//
// The same seeded generator drives the multi-query engine: a random batch
// of queries over one random document, executed through one shared scan,
// must reproduce every query's solo streaming output byte-for-byte (which
// the suite above has already tied to the NaiveDom oracle).

class FuzzMultiQueryTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzMultiQueryTest, BatchedExecutionMatchesSoloRuns) {
  QueryFuzzer fuzzer(GetParam() * 7919 + 17);
  for (int round = 0; round < 4; ++round) {
    const size_t batch_size = 2 + (GetParam() + round) % 4;  // 2..5 queries
    std::vector<std::string> queries;
    for (size_t i = 0; i < batch_size; ++i) queries.push_back(fuzzer.Generate());
    std::string doc = RandomDocument(GetParam() * 977 + round);
    if (std::getenv("GCX_FUZZ_VERBOSE") != nullptr) {
      for (const std::string& q : queries) std::cerr << "QUERY: " << q << "\n";
      std::cerr << "DOC: " << doc << "\n";
    }

    std::vector<CompiledQuery> compiled;
    compiled.reserve(queries.size());
    for (const std::string& q : queries) {
      auto one = CompiledQuery::Compile(q, {});
      ASSERT_TRUE(one.ok()) << one.status().ToString() << "\n" << q;
      compiled.push_back(std::move(one).value());
    }

    Engine solo;
    std::vector<std::string> solo_outputs;
    for (const CompiledQuery& query : compiled) {
      std::ostringstream out;
      auto stats = solo.Execute(query, doc, &out);
      ASSERT_TRUE(stats.ok()) << stats.status().ToString() << "\n" << doc;
      solo_outputs.push_back(out.str());
    }

    std::vector<const CompiledQuery*> batch;
    std::vector<std::ostringstream> buffers(compiled.size());
    std::vector<std::ostream*> outs;
    for (size_t i = 0; i < compiled.size(); ++i) {
      batch.push_back(&compiled[i]);
      outs.push_back(&buffers[i]);
    }
    MultiQueryEngine engine;
    auto stats = engine.Execute(batch, doc, outs);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString() << "\n" << doc;

    for (size_t i = 0; i < compiled.size(); ++i) {
      ASSERT_EQ(buffers[i].str(), solo_outputs[i])
          << "batched query " << i << " diverges\nquery: " << queries[i]
          << "\ndoc: " << doc;
    }
    // One shared pass; no query scanned privately; every query's role
    // bookkeeping balanced (GC is on in the default options).
    ASSERT_EQ(stats->shared.scan_passes, 1u);
    for (const ExecStats& q : stats->per_query) {
      ASSERT_EQ(q.scan_passes, 0u);
      ASSERT_EQ(q.live_roles_final, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzMultiQueryTest,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace gcx
