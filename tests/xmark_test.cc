// Tests for the XMark workload substrate (src/xmark): generator
// determinism, document well-formedness and shape, query compilation and
// expected result structure.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <string_view>

#include "core/engine.h"
#include "xml/dom.h"
#include "xpath/dom_eval.h"
#include "xmark/generator.h"
#include "xmark/queries.h"

namespace gcx {
namespace {

TEST(XMarkGenerator, DeterministicInSeedAndFactor) {
  EXPECT_EQ(GenerateXMark(XMarkOptions{0.1, 1}),
            GenerateXMark(XMarkOptions{0.1, 1}));
  EXPECT_NE(GenerateXMark(XMarkOptions{0.1, 1}),
            GenerateXMark(XMarkOptions{0.1, 2}));
}

TEST(XMarkGenerator, SizeScalesRoughlyLinearly) {
  size_t s1 = GenerateXMark(XMarkOptions{0.5, 42}).size();
  size_t s2 = GenerateXMark(XMarkOptions{1.0, 42}).size();
  size_t s4 = GenerateXMark(XMarkOptions{2.0, 42}).size();
  EXPECT_GT(s2, s1 * 17 / 10);
  EXPECT_LT(s2, s1 * 23 / 10);
  EXPECT_GT(s4, s2 * 17 / 10);
  EXPECT_LT(s4, s2 * 23 / 10);
  // Factor 1.0 ≈ 1 MB ± 50%.
  EXPECT_GT(s2, 500u * 1024);
  EXPECT_LT(s2, 1500u * 1024);
}

TEST(XMarkGenerator, ShapeForFactorMatchesDocument) {
  XMarkShape shape = ShapeForFactor(0.2);
  std::string doc_text = GenerateXMark(XMarkOptions{0.2, 42});
  auto doc = ParseDom(doc_text);
  ASSERT_TRUE(doc.ok());
  auto count = [&](const char* path) {
    auto parsed = ParsePath(path);
    GCX_CHECK(parsed.ok());
    return EvalPath((*doc)->root(), *parsed).size();
  };
  EXPECT_EQ(count("site/people/person"), shape.people);
  EXPECT_EQ(count("site/regions/australia/item"), shape.items_per_region);
  // Note: closed_auction itemrefs also contain <item> subelements (the
  // attribute→subelement conversion), so the region scope matters.
  EXPECT_EQ(count("site/regions//item"), shape.items_per_region * 6);
  EXPECT_EQ(count("site/closed_auctions/closed_auction"),
            shape.closed_auctions);
  EXPECT_EQ(count("site/open_auctions/open_auction"), shape.open_auctions);
  EXPECT_EQ(count("site/categories/category"), shape.categories);
}

TEST(XMarkGenerator, DocumentIsWellFormed) {
  auto doc = ParseDom(GenerateXMark(XMarkOptions{0.3, 7}));
  EXPECT_TRUE(doc.ok());
}

TEST(XMarkGenerator, PersonsHaveQ1AndQ20Fields) {
  auto doc = ParseDom(GenerateXMark(XMarkOptions{0.3, 7}));
  ASSERT_TRUE(doc.ok());
  auto ids = EvalPath((*doc)->root(), *ParsePath("site/people/person/id"));
  ASSERT_FALSE(ids.empty());
  EXPECT_EQ(ids[0]->StringValue(), "person0");
  auto incomes =
      EvalPath((*doc)->root(), *ParsePath("site/people/person/profile/income"));
  auto persons = EvalPath((*doc)->root(), *ParsePath("site/people/person"));
  // ~85% of people have an income (Q20 needs a non-empty "na" bucket too).
  EXPECT_GT(incomes.size(), persons.size() / 2);
  EXPECT_LT(incomes.size(), persons.size());
}

TEST(XMarkQueries, AllCompileUnderEveryConfiguration) {
  for (const NamedQuery& query : AllXMarkQueries()) {
    for (int mask = 0; mask < 8; ++mask) {
      EngineOptions options;
      options.aggregate_roles = (mask & 1) != 0;
      options.eliminate_redundant_roles = (mask & 2) != 0;
      options.early_updates = (mask & 4) != 0;
      auto compiled = CompiledQuery::Compile(query.text, options);
      EXPECT_TRUE(compiled.ok())
          << query.name << ": " << compiled.status().ToString();
    }
  }
}

std::string RunXMark(std::string_view query, const std::string& doc,
                     ExecStats* stats = nullptr) {
  auto compiled = CompiledQuery::Compile(query);
  GCX_CHECK(compiled.ok());
  Engine engine;
  std::ostringstream out;
  auto result = engine.Execute(*compiled, doc, &out);
  GCX_CHECK(result.ok());
  if (stats != nullptr) *stats = *result;
  return out.str();
}

TEST(XMarkQueries, Q1FindsExactlyPerson0) {
  std::string doc = GenerateXMark(XMarkOptions{0.1, 42});
  std::string out = RunXMark(XMarkQ1(), doc);
  // Exactly one <name> in the result.
  size_t first = out.find("<name>");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(out.find("<name>", first + 1), std::string::npos);
}

TEST(XMarkQueries, Q6OutputsAllItems) {
  std::string doc = GenerateXMark(XMarkOptions{0.1, 42});
  XMarkShape shape = ShapeForFactor(0.1);
  std::string out = RunXMark(XMarkQ6(), doc);
  size_t items = 0;
  for (size_t pos = out.find("<item>"); pos != std::string::npos;
       pos = out.find("<item>", pos + 1)) {
    ++items;
  }
  EXPECT_EQ(items, shape.items_per_region * 6);
}

TEST(XMarkQueries, Q13OutputsAustralianItems) {
  std::string doc = GenerateXMark(XMarkOptions{0.1, 42});
  XMarkShape shape = ShapeForFactor(0.1);
  std::string out = RunXMark(XMarkQ13(), doc);
  size_t names = 0;
  for (size_t pos = out.find("<name>"); pos != std::string::npos;
       pos = out.find("<name>", pos + 1)) {
    ++names;
  }
  EXPECT_EQ(names, shape.items_per_region);
}

TEST(XMarkQueries, Q20ClassifiesEveryPersonOnce) {
  std::string doc = GenerateXMark(XMarkOptions{0.1, 42});
  XMarkShape shape = ShapeForFactor(0.1);
  std::string out = RunXMark(XMarkQ20(), doc);
  size_t buckets = 0;
  for (const char* open : {"<preferred>", "<standard>", "<challenge>", "<na>"}) {
    for (size_t pos = out.find(open); pos != std::string::npos;
         pos = out.find(open, pos + 1)) {
      ++buckets;
    }
  }
  EXPECT_EQ(buckets, shape.people);
}

TEST(XMarkQueries, Q8JoinMemoryGrowsWithDocument) {
  // The join buffers people + closed auctions: peak grows with size
  // (Table 1's Q8 row), unlike Q1 (constant).
  std::string small = GenerateXMark(XMarkOptions{0.2, 42});
  std::string large = GenerateXMark(XMarkOptions{0.8, 42});
  ExecStats q8_small, q8_large, q1_small, q1_large;
  RunXMark(XMarkQ8(), small, &q8_small);
  RunXMark(XMarkQ8(), large, &q8_large);
  RunXMark(XMarkQ1(), small, &q1_small);
  RunXMark(XMarkQ1(), large, &q1_large);
  EXPECT_GT(q8_large.buffer.bytes_peak, 2 * q8_small.buffer.bytes_peak);
  // Q1 peak is essentially flat (allow 50% slack for role-vector noise).
  EXPECT_LT(q1_large.buffer.bytes_peak, q1_small.buffer.bytes_peak * 3 / 2);
}

}  // namespace
}  // namespace gcx
