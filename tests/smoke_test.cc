// End-to-end smoke tests: the paper's introduction query and the XMark
// workload, differentially checked against the NaiveDom oracle across all
// engine configurations.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <string_view>

#include "core/engine.h"
#include "xmark/generator.h"
#include "xmark/queries.h"

namespace gcx {
namespace {

// The introduction's example query: children of bib without a price, then
// all book titles.
constexpr std::string_view kIntroQuery = R"q(
<r>{
  for $bib in /bib return
    ((for $x in $bib/* return
        if (not(exists($x/price))) then $x else ()),
     (for $b in $bib/book return $b/title))
}</r>)q";

constexpr std::string_view kIntroDoc =
    "<bib>"
    "<book><title>T1</title><author>A1</author></book>"
    "<cd><title>T2</title><price>10</price></cd>"
    "<book><title>T3</title><price>5</price></book>"
    "</bib>";

std::string RunWith(const EngineOptions& options, std::string_view query,
                    std::string_view doc, ExecStats* stats_out = nullptr) {
  auto compiled = CompiledQuery::Compile(query, options);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  if (!compiled.ok()) return "<compile error>";
  Engine engine;
  std::ostringstream out;
  auto stats = engine.Execute(*compiled, doc, &out);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  if (stats.ok() && stats_out != nullptr) *stats_out = *stats;
  return out.str();
}

TEST(Smoke, IntroQueryGcx) {
  std::string out = RunWith(EngineOptions{}, kIntroQuery, kIntroDoc);
  EXPECT_EQ(out,
            "<r>"
            "<book><title>T1</title><author>A1</author></book>"
            "<title>T1</title><title>T3</title>"
            "</r>");
}

TEST(Smoke, IntroQueryNaiveDomAgrees) {
  EngineOptions naive;
  naive.mode = EngineMode::kNaiveDom;
  EXPECT_EQ(RunWith(naive, kIntroQuery, kIntroDoc),
            RunWith(EngineOptions{}, kIntroQuery, kIntroDoc));
}

TEST(Smoke, AllConfigurationsAgreeOnIntro) {
  EngineOptions naive;
  naive.mode = EngineMode::kNaiveDom;
  std::string expected = RunWith(naive, kIntroQuery, kIntroDoc);
  for (bool gc : {true, false}) {
    for (bool agg : {true, false}) {
      for (bool rre : {true, false}) {
        for (bool early : {true, false}) {
          EngineOptions options;
          options.enable_gc = gc;
          options.aggregate_roles = agg;
          options.eliminate_redundant_roles = rre;
          options.early_updates = early;
          EXPECT_EQ(RunWith(options, kIntroQuery, kIntroDoc), expected)
              << "gc=" << gc << " agg=" << agg << " rre=" << rre
              << " early=" << early;
        }
      }
    }
  }
}

TEST(Smoke, XMarkQueriesAgreeWithOracle) {
  std::string doc = GenerateXMark(XMarkOptions{0.05, 7});
  EngineOptions naive;
  naive.mode = EngineMode::kNaiveDom;
  for (const NamedQuery& query : AllXMarkQueries()) {
    std::string expected = RunWith(naive, query.text, doc);
    std::string actual = RunWith(EngineOptions{}, query.text, doc);
    EXPECT_EQ(actual, expected) << query.name;
  }
}

TEST(Smoke, GcReducesPeakMemory) {
  std::string doc = GenerateXMark(XMarkOptions{0.2, 7});
  ExecStats with_gc;
  ExecStats without_gc;
  EngineOptions on;
  EngineOptions off;
  off.enable_gc = false;
  RunWith(on, XMarkQ1(), doc, &with_gc);
  RunWith(off, XMarkQ1(), doc, &without_gc);
  EXPECT_LT(with_gc.peak_bytes, without_gc.peak_bytes);
}

}  // namespace
}  // namespace gcx
