// Table 1, Q8 block: time and peak buffer memory across engines and
// document sizes (see bench_table1.cc for the column mapping).

#include "bench_query.h"

int main(int argc, char** argv) {
  gcx::bench::RegisterQueryBenchmarks("Q8", gcx::XMarkQ8());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
