// Event-pipeline throughput: MB/s, events/s and allocations/event.
//
// Three documents stress the ends of the scan hot path:
//   * xmark     — the paper's auction document (text-heavy, deep structure);
//   * tagdense  — synthetic markup that is almost all tags (64 distinct
//                 element names cycling at high frequency, tiny payloads),
//                 the worst case for per-event tag interning and DFA
//                 transition lookup;
//   * textdense — ~2 KB prose runs between sparse tags, the best case for
//                 the block-wise scan kernels.
// Each document runs a single scan-bound query solo, and the XMark document
// additionally runs an 8-query batch through the MultiQueryEngine (one
// shared scan). The textdense document and an attribute-rich tagdense
// variant additionally run as scalar-vs-dispatched A/B pairs (see
// RunBackendAb): same build and document, only the scan-kernel table
// differs, outputs asserted byte-identical — the MB/s ratio within a pair
// is the SIMD speedup CI gates on (>= 1.4x text-dense, >= 1.2x tag-dense).
// Allocations are counted with the opt-in operator-new hook
// from bench_util.h, over the Execute call only — steady-state
// allocations/event is the pipeline's zero-copy health metric, asserted in
// CI against a fixed ceiling (wall-clock gates would flake; alloc counts
// don't).
//
// GCX_BENCH_SCALE=N multiplies the document sizes.
// GCX_BENCH_JSON=path overrides the output path
// (default: BENCH_throughput.json in the working directory).

#define GCX_BENCH_COUNT_ALLOCS 1

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/multi_engine.h"
#include "xml/simd_scan.h"

namespace {

using gcx::bench::AllocCounterScope;

struct Row {
  std::string workload;  // "xmark" | "tagdense" | "textdense"
  std::string mode;      // "solo" | "batch8"
  std::string backend;   // scan-kernel family classifying the bytes
  uint64_t document_bytes = 0;
  uint64_t events = 0;
  uint64_t allocs = 0;
  double seconds = 0;
  double mb_per_s() const {
    return seconds > 0
               ? static_cast<double>(document_bytes) / (1024.0 * 1024.0) / seconds
               : 0;
  }
  double events_per_s() const {
    return seconds > 0 ? static_cast<double>(events) / seconds : 0;
  }
  double allocs_per_event() const {
    return events > 0 ? static_cast<double>(allocs) / static_cast<double>(events)
                      : 0;
  }
};

/// Markup-dominated document: 64 distinct tag names cycling at high
/// frequency with one tiny text payload each.
std::string GenerateTagDense(uint64_t records) {
  std::string out = "<db>";
  out.reserve(records * 32);
  for (uint64_t i = 0; i < records; ++i) {
    std::string tag = "t" + std::to_string(i % 64);
    out += "<" + tag + "><id>" + std::to_string(i) + "</id></" + tag + ">";
  }
  out += "</db>";
  return out;
}

/// Attribute-rich tag-dense markup: the SVG/OOXML shape, where most bytes
/// are attribute values (ids, class lists, content hashes) but the document
/// is still all markup — no prose. Attribute values are consumed whole by
/// the block-wise attribute scan, so this is the markup-dominated end of
/// the kernel A/B.
std::string GenerateTagDenseAttrs(uint64_t records) {
  // Realistic vector-graphics path data: one multi-segment curve per record,
  // the kind of attribute value SVG exports emit by the thousand.
  static const char* kPathData =
      "M10.5 20.25 L33.1 40.7 C45.2 51.9 60.4 63.0 72.8 55.5 "
      "S88.1 42.3 95.6 30.2 L103.4 18.9 "
      "C110.0 12.4 121.7 9.8 133.5 14.2 S150.9 28.6 158.3 41.0 "
      "L166.1 53.8 C172.8 64.9 184.2 71.3 196.0 66.7 "
      "S211.4 50.1 218.8 37.7 L226.6 25.3 Z";
  std::string out = "<db>";
  out.reserve(records * 480);
  for (uint64_t i = 0; i < records; ++i) {
    std::string tag = "t" + std::to_string(i % 64);
    out += "<" + tag + " id=\"rec-" + std::to_string(i) +
           "\" class=\"row published inventory-item region-east\""
           " style=\"fill:none;stroke:#1a7f37;stroke-width:2.5;"
           "stroke-linejoin:round;stroke-dasharray:4 2 1 2;"
           "opacity:0.85;mix-blend-mode:multiply\" d=\"" +
           kPathData +
           "\" transform=\"matrix(0.9848,-0.1736,0.1736,0.9848,12.25,-4.5)\""
           " checksum=\"9f86d081884c7d659a2feaa0c55ad015"
           "a3bf4f1b2b0b822cd15d6c15b0f00a08\"><id>" +
           std::to_string(i) + "</id></" + tag + ">";
  }
  out += "</db>";
  return out;
}

/// The backend label for rows run with `options`: what DispatchedScanOps()
/// resolved to, or "scalar" when the options force the reference kernels.
std::string BackendLabel(const gcx::EngineOptions& options) {
  if (options.scanner.force_scalar) return "scalar";
  return gcx::SimdBackendName(gcx::DispatchedScanOps().backend);
}

Row RunSoloOpts(const std::string& workload, std::string_view query_text,
                const std::string& doc, int reps,
                const gcx::EngineOptions& options,
                std::string* output = nullptr) {
  auto compiled = gcx::CompiledQuery::Compile(query_text, options);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 compiled.status().ToString().c_str());
    std::abort();
  }
  Row row;
  row.workload = workload;
  row.mode = "solo";
  row.backend = BackendLabel(options);
  row.document_bytes = doc.size();
  row.seconds = 1e30;
  gcx::Engine engine;
  for (int rep = 0; rep < reps; ++rep) {
    std::ostringstream captured;
    gcx::bench::NullBuffer null_buffer;
    std::ostream null_stream(&null_buffer);
    std::ostream* out = output != nullptr
                            ? static_cast<std::ostream*>(&captured)
                            : &null_stream;
    AllocCounterScope allocs;
    auto start = std::chrono::steady_clock::now();
    auto stats = engine.Execute(*compiled, doc, out);
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (!stats.ok()) {
      std::fprintf(stderr, "execute failed: %s\n",
                   stats.status().ToString().c_str());
      std::abort();
    }
    row.seconds = std::min(row.seconds, seconds);
    row.events = stats->projector.events_read;
    row.allocs = allocs.count();
    if (output != nullptr) *output = captured.str();
  }
  return row;
}

Row RunSolo(const std::string& workload, std::string_view query_text,
            const std::string& doc, int reps) {
  return RunSoloOpts(workload, query_text, doc, reps, {});
}

/// One scalar-vs-dispatched A/B pair on the same document, query, build and
/// process: only the scan-kernel table differs. Aborts unless both runs
/// produced byte-identical output (observational equivalence is the
/// precondition for comparing their speeds at all).
void RunBackendAb(const std::string& workload, std::string_view query_text,
                  const std::string& doc, int reps, std::vector<Row>* rows) {
  gcx::EngineOptions scalar_options;
  scalar_options.scanner.force_scalar = true;
  std::string scalar_output, dispatched_output;
  rows->push_back(RunSoloOpts(workload, query_text, doc, reps, scalar_options,
                              &scalar_output));
  rows->push_back(
      RunSoloOpts(workload, query_text, doc, reps, {}, &dispatched_output));
  if (scalar_output != dispatched_output) {
    std::fprintf(stderr,
                 "%s: scalar and dispatched outputs differ — kernel bug\n",
                 workload.c_str());
    std::abort();
  }
}

/// Text-dominated document: ~2 KB of prose per record between sparse tags —
/// long uninterrupted runs for the block-wise text scan, the best case the
/// SIMD kernels are built for (and the honest worst case for the scalar
/// reference).
std::string GenerateTextDense(uint64_t records) {
  static const char* kSentences[] = {
      "The auction closed before the reserve price was met, ",
      "so the seller relisted the item with a lower opening bid.\n",
      "Watchers received a digest of outbid notifications, ",
      "most of which arrived long after the hammer had fallen.\n",
  };
  std::string out = "<library>";
  out.reserve(records * 2200);
  for (uint64_t i = 0; i < records; ++i) {
    out += "<doc><title>doc";
    out += std::to_string(i);
    out += "</title><body>";
    for (int s = 0; s < 40; ++s) {
      out += kSentences[(i + static_cast<uint64_t>(s)) % 4];
    }
    out += "</body></doc>";
  }
  out += "</library>";
  return out;
}

Row RunBatch8(const std::string& doc, int reps) {
  // The scan-bound XMark queries, cycled to 8 (Q8's quadratic join would
  // dominate wall time and hide the pipeline cost this bench isolates).
  std::vector<gcx::CompiledQuery> compiled;
  for (const gcx::NamedQuery& query : gcx::AllXMarkQueries()) {
    if (std::string(query.name) == "Q8") continue;
    auto one = gcx::CompiledQuery::Compile(query.text, {});
    if (!one.ok()) {
      std::fprintf(stderr, "compile failed: %s\n",
                   one.status().ToString().c_str());
      std::abort();
    }
    compiled.push_back(std::move(one).value());
  }
  std::vector<const gcx::CompiledQuery*> batch;
  for (size_t i = 0; i < 8; ++i) batch.push_back(&compiled[i % compiled.size()]);

  Row row;
  row.workload = "xmark";
  row.mode = "batch8";
  row.backend = BackendLabel({});
  row.document_bytes = doc.size();
  row.seconds = 1e30;
  gcx::MultiQueryEngine engine;
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<gcx::bench::NullBuffer> null_buffers(batch.size());
    std::vector<std::unique_ptr<std::ostream>> streams;
    std::vector<std::ostream*> outs;
    for (gcx::bench::NullBuffer& buffer : null_buffers) {
      streams.push_back(std::make_unique<std::ostream>(&buffer));
      outs.push_back(streams.back().get());
    }
    AllocCounterScope allocs;
    auto start = std::chrono::steady_clock::now();
    auto stats = engine.Execute(batch, doc, outs);
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (!stats.ok()) {
      std::fprintf(stderr, "batched execute failed: %s\n",
                   stats.status().ToString().c_str());
      std::abort();
    }
    row.seconds = std::min(row.seconds, seconds);
    // Batched cost is per *scanner* event: the one shared pass is the
    // denominator, like bytes are for MB/s.
    row.events = stats->shared.events_scanned;
    row.allocs = allocs.count();
  }
  return row;
}

void WriteJson(const std::string& path, const std::vector<Row>& rows) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "  {\"workload\": \"%s\", \"mode\": \"%s\", \"backend\": \"%s\", "
        "\"document_bytes\": %llu, "
        "\"seconds\": %.6f, \"mb_per_s\": %.2f, \"events\": %llu, "
        "\"events_per_s\": %.0f, \"allocs\": %llu, "
        "\"allocs_per_event\": %.4f}%s\n",
        r.workload.c_str(), r.mode.c_str(), r.backend.c_str(),
        static_cast<unsigned long long>(r.document_bytes), r.seconds,
        r.mb_per_s(), static_cast<unsigned long long>(r.events),
        r.events_per_s(), static_cast<unsigned long long>(r.allocs),
        r.allocs_per_event(), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]");
  gcx::bench::WriteMetricsMember(f);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s (%zu rows)\n", path.c_str(), rows.size());
}

}  // namespace

int main() {
  using namespace gcx;
  using namespace gcx::bench;

  const int reps = 3;
  // The A/B pairs gate CI on a ratio of two min-of-N timings, so a single
  // noisy rep on a loaded runner can sink the whole gate; take more samples
  // there than for the informational rows.
  const int ab_reps = 7;
  std::string xmark = GenerateXMark(XMarkOptions{8 * BenchScale(), 42});
  std::string tagdense =
      GenerateTagDense(static_cast<uint64_t>(200000 * BenchScale()));
  std::string textdense =
      GenerateTextDense(static_cast<uint64_t>(4000 * BenchScale()));

  std::vector<Row> rows;
  rows.push_back(RunSolo("xmark", XMarkQ6(), xmark, reps));
  rows.push_back(RunBatch8(xmark, reps));
  // Only the t0 rows are live for the query; the other 63 tag names are
  // fast-skipped — raw tokenizer + DFA-transition speed.
  rows.push_back(
      RunSolo("tagdense", "<out>{ count(/db/t0/id) }</out>", tagdense, reps));
  // Scalar-vs-dispatched A/B: same build, same document, outputs asserted
  // byte-identical; the MB/s ratio between the two rows of a pair is the
  // SIMD speedup CI gates on.
  RunBackendAb("textdense", "<out>{ count(/library/doc/title) }</out>",
               textdense, ab_reps, &rows);
  // The A/B pair runs the attribute-rich shape of tag-dense markup (ids,
  // class lists, content hashes — the SVG/OOXML-style worst case): still
  // markup-dominated, but the attribute values are runs the block-wise
  // attribute scan consumes whole, which is where the kernels can win on
  // this end of the spectrum.
  std::string tagdense_attrs =
      GenerateTagDenseAttrs(static_cast<uint64_t>(60000 * BenchScale()));
  RunBackendAb("tagdense", "<out>{ count(/db/t0/id) }</out>", tagdense_attrs,
               ab_reps, &rows);

  std::printf("%-10s | %-7s | %-7s | %-8s | %-10s | %-12s | %-10s\n",
              "workload", "mode", "backend", "MB", "MB/s", "events/s",
              "allocs/ev");
  for (const Row& r : rows) {
    std::printf("%-10s | %-7s | %-7s | %-8s | %10.1f | %12.0f | %10.4f\n",
                r.workload.c_str(), r.mode.c_str(), r.backend.c_str(),
                HumanBytes(r.document_bytes).c_str(), r.mb_per_s(),
                r.events_per_s(), r.allocs_per_event());
  }
  std::fflush(stdout);

  const char* json_path = std::getenv("GCX_BENCH_JSON");
  WriteJson(json_path != nullptr ? json_path : "BENCH_throughput.json", rows);
  return 0;
}
