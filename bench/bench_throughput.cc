// Event-pipeline throughput: MB/s, events/s and allocations/event.
//
// Two documents stress the two ends of the scan hot path:
//   * xmark    — the paper's auction document (text-heavy, deep structure);
//   * tagdense — synthetic markup that is almost all tags (64 distinct
//                element names cycling at high frequency, tiny payloads),
//                the worst case for per-event tag interning and DFA
//                transition lookup.
// Each document runs a single scan-bound query solo, and the XMark document
// additionally runs an 8-query batch through the MultiQueryEngine (one
// shared scan). Allocations are counted with the opt-in operator-new hook
// from bench_util.h, over the Execute call only — steady-state
// allocations/event is the pipeline's zero-copy health metric, asserted in
// CI against a fixed ceiling (wall-clock gates would flake; alloc counts
// don't).
//
// GCX_BENCH_SCALE=N multiplies the document sizes.
// GCX_BENCH_JSON=path overrides the output path
// (default: BENCH_throughput.json in the working directory).

#define GCX_BENCH_COUNT_ALLOCS 1

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/multi_engine.h"

namespace {

using gcx::bench::AllocCounterScope;

struct Row {
  std::string workload;  // "xmark" | "tagdense"
  std::string mode;      // "solo" | "batch8"
  uint64_t document_bytes = 0;
  uint64_t events = 0;
  uint64_t allocs = 0;
  double seconds = 0;
  double mb_per_s() const {
    return seconds > 0
               ? static_cast<double>(document_bytes) / (1024.0 * 1024.0) / seconds
               : 0;
  }
  double events_per_s() const {
    return seconds > 0 ? static_cast<double>(events) / seconds : 0;
  }
  double allocs_per_event() const {
    return events > 0 ? static_cast<double>(allocs) / static_cast<double>(events)
                      : 0;
  }
};

/// Markup-dominated document: 64 distinct tag names cycling at high
/// frequency with one tiny text payload each.
std::string GenerateTagDense(uint64_t records) {
  std::string out = "<db>";
  out.reserve(records * 32);
  for (uint64_t i = 0; i < records; ++i) {
    std::string tag = "t" + std::to_string(i % 64);
    out += "<" + tag + "><id>" + std::to_string(i) + "</id></" + tag + ">";
  }
  out += "</db>";
  return out;
}

Row RunSolo(const std::string& workload, std::string_view query_text,
            const std::string& doc, int reps) {
  auto compiled = gcx::CompiledQuery::Compile(query_text, {});
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 compiled.status().ToString().c_str());
    std::abort();
  }
  Row row;
  row.workload = workload;
  row.mode = "solo";
  row.document_bytes = doc.size();
  row.seconds = 1e30;
  gcx::Engine engine;
  for (int rep = 0; rep < reps; ++rep) {
    gcx::bench::NullBuffer null_buffer;
    std::ostream null_stream(&null_buffer);
    AllocCounterScope allocs;
    auto start = std::chrono::steady_clock::now();
    auto stats = engine.Execute(*compiled, doc, &null_stream);
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (!stats.ok()) {
      std::fprintf(stderr, "execute failed: %s\n",
                   stats.status().ToString().c_str());
      std::abort();
    }
    row.seconds = std::min(row.seconds, seconds);
    row.events = stats->projector.events_read;
    row.allocs = allocs.count();
  }
  return row;
}

Row RunBatch8(const std::string& doc, int reps) {
  // The scan-bound XMark queries, cycled to 8 (Q8's quadratic join would
  // dominate wall time and hide the pipeline cost this bench isolates).
  std::vector<gcx::CompiledQuery> compiled;
  for (const gcx::NamedQuery& query : gcx::AllXMarkQueries()) {
    if (std::string(query.name) == "Q8") continue;
    auto one = gcx::CompiledQuery::Compile(query.text, {});
    if (!one.ok()) {
      std::fprintf(stderr, "compile failed: %s\n",
                   one.status().ToString().c_str());
      std::abort();
    }
    compiled.push_back(std::move(one).value());
  }
  std::vector<const gcx::CompiledQuery*> batch;
  for (size_t i = 0; i < 8; ++i) batch.push_back(&compiled[i % compiled.size()]);

  Row row;
  row.workload = "xmark";
  row.mode = "batch8";
  row.document_bytes = doc.size();
  row.seconds = 1e30;
  gcx::MultiQueryEngine engine;
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<gcx::bench::NullBuffer> null_buffers(batch.size());
    std::vector<std::unique_ptr<std::ostream>> streams;
    std::vector<std::ostream*> outs;
    for (gcx::bench::NullBuffer& buffer : null_buffers) {
      streams.push_back(std::make_unique<std::ostream>(&buffer));
      outs.push_back(streams.back().get());
    }
    AllocCounterScope allocs;
    auto start = std::chrono::steady_clock::now();
    auto stats = engine.Execute(batch, doc, outs);
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (!stats.ok()) {
      std::fprintf(stderr, "batched execute failed: %s\n",
                   stats.status().ToString().c_str());
      std::abort();
    }
    row.seconds = std::min(row.seconds, seconds);
    // Batched cost is per *scanner* event: the one shared pass is the
    // denominator, like bytes are for MB/s.
    row.events = stats->shared.events_scanned;
    row.allocs = allocs.count();
  }
  return row;
}

void WriteJson(const std::string& path, const std::vector<Row>& rows) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "  {\"workload\": \"%s\", \"mode\": \"%s\", \"document_bytes\": %llu, "
        "\"seconds\": %.6f, \"mb_per_s\": %.2f, \"events\": %llu, "
        "\"events_per_s\": %.0f, \"allocs\": %llu, "
        "\"allocs_per_event\": %.4f}%s\n",
        r.workload.c_str(), r.mode.c_str(),
        static_cast<unsigned long long>(r.document_bytes), r.seconds,
        r.mb_per_s(), static_cast<unsigned long long>(r.events),
        r.events_per_s(), static_cast<unsigned long long>(r.allocs),
        r.allocs_per_event(), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]");
  gcx::bench::WriteMetricsMember(f);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s (%zu rows)\n", path.c_str(), rows.size());
}

}  // namespace

int main() {
  using namespace gcx;
  using namespace gcx::bench;

  const int reps = 3;
  std::string xmark = GenerateXMark(XMarkOptions{8 * BenchScale(), 42});
  std::string tagdense =
      GenerateTagDense(static_cast<uint64_t>(200000 * BenchScale()));

  std::vector<Row> rows;
  rows.push_back(RunSolo("xmark", XMarkQ6(), xmark, reps));
  rows.push_back(RunBatch8(xmark, reps));
  // Only the t0 rows are live for the query; the other 63 tag names are
  // fast-skipped — raw tokenizer + DFA-transition speed.
  rows.push_back(
      RunSolo("tagdense", "<out>{ count(/db/t0/id) }</out>", tagdense, reps));

  std::printf("%-10s | %-7s | %-8s | %-10s | %-12s | %-10s\n", "workload",
              "mode", "MB", "MB/s", "events/s", "allocs/ev");
  for (const Row& r : rows) {
    std::printf("%-10s | %-7s | %-8s | %10.1f | %12.0f | %10.4f\n",
                r.workload.c_str(), r.mode.c_str(),
                HumanBytes(r.document_bytes).c_str(), r.mb_per_s(),
                r.events_per_s(), r.allocs_per_event());
  }
  std::fflush(stdout);

  const char* json_path = std::getenv("GCX_BENCH_JSON");
  WriteJson(json_path != nullptr ? json_path : "BENCH_throughput.json", rows);
  return 0;
}
