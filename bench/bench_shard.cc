// Sharded-scan scaling: MB/s and speedup of the parallel sharded executor
// (core/shard.h) over the ordinary single scan, at 1/2/4/8 shards with one
// worker thread per shard.
//
// Two workloads over the paper's XMark auction document:
//   * xmark_q6 — the scan-bound Q6: almost all wall time is tokenizing +
//     DFA prefiltering, exactly the part the shard pool parallelizes, so
//     the measured speedup is the shard layer's own scaling.
//   * buffer_heavy — Q13 (names + descriptions of Australian items), a
//     classifier-eligible loop whose projection/buffer/evaluation work runs
//     INSIDE each shard worker (shard-local evaluation). Under the old
//     merge-and-replay scheme this tail was serial and capped the speedup;
//     the benchmark aborts if the local path did not actually activate.
//
// Every sharded run is checked byte-for-byte against the unsharded output;
// a mismatch aborts the benchmark. CI asserts the `outputs_identical` flag
// on every row plus >= 1.5x (xmark_q6) and >= 1.3x (buffer_heavy) speedup
// at 4 shards. Speedups are computed against the same workload's 1-shard
// row.
//
// GCX_BENCH_SCALE=N multiplies the document size.
// GCX_BENCH_JSON=path overrides the output path
// (default: BENCH_shard.json in the working directory).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.h"
#include "core/multi_engine.h"
#include "core/shard.h"
#include "xmark/generator.h"
#include "xmark/queries.h"

namespace {

struct Row {
  std::string workload;
  size_t shards = 0;            // requested worker count (1 = single scan)
  uint64_t planned_shards = 0;  // what the planner actually produced
  uint64_t local_queries = 0;   // queries evaluated shard-locally
  uint64_t document_bytes = 0;
  double seconds = 0;
  bool outputs_identical = false;
  double mb_per_s() const {
    return seconds > 0
               ? static_cast<double>(document_bytes) / (1024.0 * 1024.0) / seconds
               : 0;
  }
};

std::string RunOnce(const gcx::MultiQueryEngine& engine,
                    const gcx::CompiledQuery& query, const std::string& doc,
                    const gcx::ShardOptions& options) {
  std::ostringstream out;
  auto stats = engine.ExecuteSharded({&query}, doc, {&out}, options);
  if (!stats.ok()) {
    std::fprintf(stderr, "sharded execute failed: %s\n",
                 stats.status().ToString().c_str());
    std::abort();
  }
  return out.str();
}

Row RunShards(const std::string& workload, const gcx::MultiQueryEngine& engine,
              const gcx::CompiledQuery& query, const std::string& doc,
              size_t shards, const std::string& golden, int reps) {
  gcx::ShardOptions options;
  options.shards = shards;
  options.threads = shards;

  Row row;
  row.workload = workload;
  row.shards = shards;
  row.document_bytes = doc.size();
  row.outputs_identical = RunOnce(engine, query, doc, options) == golden;
  row.seconds = 1e30;
  for (int rep = 0; rep < reps; ++rep) {
    gcx::bench::NullBuffer null_buffer;
    std::ostream null_stream(&null_buffer);
    auto start = std::chrono::steady_clock::now();
    auto stats = engine.ExecuteSharded({&query}, doc, {&null_stream}, options);
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (!stats.ok()) {
      std::fprintf(stderr, "sharded execute failed: %s\n",
                   stats.status().ToString().c_str());
      std::abort();
    }
    row.seconds = std::min(row.seconds, seconds);
    row.planned_shards = stats->shared.shards;
    row.local_queries = stats->shared.shard_local_queries;
  }
  return row;
}

void WriteJson(const std::string& path, const std::vector<Row>& rows) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  // Each workload's speedup is measured against its own 1-shard row.
  auto base_for = [&](const std::string& workload) {
    for (const Row& r : rows) {
      if (r.workload == workload && r.shards == 1) return r.seconds;
    }
    return 0.0;
  };
  std::fprintf(f, "{\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    double base = base_for(r.workload);
    std::fprintf(
        f,
        "  {\"workload\": \"%s\", \"shards\": %zu, \"planned_shards\": %llu, "
        "\"local_queries\": %llu, \"document_bytes\": %llu, "
        "\"seconds\": %.6f, \"mb_per_s\": %.2f, "
        "\"speedup\": %.3f, \"outputs_identical\": %s}%s\n",
        r.workload.c_str(), r.shards,
        static_cast<unsigned long long>(r.planned_shards),
        static_cast<unsigned long long>(r.local_queries),
        static_cast<unsigned long long>(r.document_bytes), r.seconds,
        r.mb_per_s(), r.seconds > 0 ? base / r.seconds : 0,
        r.outputs_identical ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]");
  gcx::bench::WriteMetricsMember(f);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s (%zu rows)\n", path.c_str(), rows.size());
}

struct Workload {
  std::string name;
  std::string_view query;
  bool expects_local_eval = false;
};

}  // namespace

int main() {
  using namespace gcx;
  using namespace gcx::bench;

  const int reps = 5;
  std::string doc = GenerateXMark(XMarkOptions{8 * BenchScale(), 42});

  const std::vector<Workload> workloads = {
      {"xmark_q6", XMarkQ6(), false},
      {"buffer_heavy", XMarkQ13(), true},
  };

  MultiQueryEngine engine;
  std::vector<Row> rows;
  for (const Workload& workload : workloads) {
    auto compiled = CompiledQuery::Compile(workload.query, {});
    if (!compiled.ok()) {
      std::fprintf(stderr, "compile failed (%s): %s\n", workload.name.c_str(),
                   compiled.status().ToString().c_str());
      std::abort();
    }

    // The unsharded output is the golden every sharded run must reproduce.
    ShardOptions single;
    single.shards = 1;
    std::string golden = RunOnce(engine, *compiled, doc, single);

    for (size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
      rows.push_back(RunShards(workload.name, engine, *compiled, doc, shards,
                               golden, reps));
      const Row& row = rows.back();
      if (workload.expects_local_eval && row.planned_shards > 1 &&
          row.local_queries == 0) {
        std::fprintf(stderr,
                     "%s did not take the shard-local path at %zu shards\n",
                     workload.name.c_str(), shards);
        std::abort();
      }
    }
  }

  std::printf("%-12s | %-7s | %-8s | %-6s | %-8s | %-10s | %-8s | %s\n",
              "workload", "shards", "planned", "local", "MB", "MB/s",
              "speedup", "identical");
  for (const Row& r : rows) {
    double base = 0;
    for (const Row& b : rows) {
      if (b.workload == r.workload && b.shards == 1) base = b.seconds;
    }
    std::printf("%-12s | %-7zu | %-8llu | %-6llu | %-8s | %10.1f | %7.2fx | %s\n",
                r.workload.c_str(), r.shards,
                static_cast<unsigned long long>(r.planned_shards),
                static_cast<unsigned long long>(r.local_queries),
                HumanBytes(r.document_bytes).c_str(), r.mb_per_s(),
                r.seconds > 0 ? base / r.seconds : 0,
                r.outputs_identical ? "yes" : "NO");
    if (!r.outputs_identical) {
      std::fprintf(stderr, "sharded output diverged (%s, %zu shards)\n",
                   r.workload.c_str(), r.shards);
      std::fflush(stdout);
      std::abort();
    }
  }
  std::fflush(stdout);

  const char* json_path = std::getenv("GCX_BENCH_JSON");
  WriteJson(json_path != nullptr ? json_path : "BENCH_shard.json", rows);
  return 0;
}
