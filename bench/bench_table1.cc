// Regenerates the paper's Table 1 (Sec. 7): evaluation time and peak
// buffer memory for the adapted XMark queries Q1, Q6, Q8, Q13, Q20 over a
// sweep of document sizes, for GCX and the re-implemented baselines.
//
// Columns map to the paper as follows (see DESIGN.md, substitutions):
//   GCX         — this reproduction, all techniques on      (paper: GCX)
//   GCX-noGC    — incremental projection, no purging        (isolates the
//                 dynamic contribution; no direct paper column)
//   Projection  — full static projection, then evaluate     (paper's static-
//                 analysis-alone class: Galax projection / FluXQuery-like)
//   NaiveDom    — buffer the whole document                 (paper: Galax/
//                 Saxon/QizX-like in-memory engines)
//
// Expected shape (paper): GCX memory is flat across document sizes for
// Q1/Q6/Q13/Q20 and grows only for the join Q8; the baselines grow linearly
// everywhere. Absolute numbers differ from the paper (different hardware,
// C++ vs JVM, synthetic XMark); the ordering and the growth shapes are the
// reproduced result.
//
// GCX_BENCH_SCALE=N multiplies the document sizes.

#include <cstdio>
#include <vector>

#include "bench_util.h"

int main() {
  using namespace gcx;
  using namespace gcx::bench;

  std::vector<double> factors = {1, 2, 4, 8};
  for (double& f : factors) f *= BenchScale();

  std::vector<EngineConfig> engines = Table1Engines();

  std::printf("Table 1 — time / peak buffer memory (shape reproduction)\n");
  std::printf("%-6s %-9s", "Query", "Size");
  for (const EngineConfig& engine : engines) {
    std::printf(" | %-20s", engine.name);
  }
  std::printf("\n");

  for (const NamedQuery& query : AllXMarkQueries()) {
    // Pre-generate documents once per size.
    for (double factor : factors) {
      std::string doc = GenerateXMark(XMarkOptions{factor, 42});
      std::printf("%-6s %-9s", query.name,
                  HumanBytes(doc.size()).c_str());
      for (const EngineConfig& engine : engines) {
        ExecStats stats = RunCell(query.text, doc, engine.options);
        std::printf(" | %8s / %-9s", HumanSeconds(stats.wall_seconds).c_str(),
                    HumanBytes(stats.peak_bytes).c_str());
      }
      std::printf("\n");
      std::fflush(stdout);
    }
  }
  return 0;
}
