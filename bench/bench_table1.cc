// Regenerates the paper's Table 1 (Sec. 7): evaluation time and peak
// buffer memory for the adapted XMark queries Q1, Q6, Q8, Q13, Q20 over a
// sweep of document sizes, for GCX and the re-implemented baselines.
//
// Columns map to the paper as follows (see DESIGN.md, substitutions):
//   GCX         — this reproduction, all techniques on      (paper: GCX)
//   GCX-noGC    — incremental projection, no purging        (isolates the
//                 dynamic contribution; no direct paper column)
//   Projection  — full static projection, then evaluate     (paper's static-
//                 analysis-alone class: Galax projection / FluXQuery-like)
//   NaiveDom    — buffer the whole document                 (paper: Galax/
//                 Saxon/QizX-like in-memory engines)
//
// Expected shape (paper): GCX memory is flat across document sizes for
// Q1/Q6/Q13/Q20 and grows only for the join Q8; the baselines grow linearly
// everywhere. Absolute numbers differ from the paper (different hardware,
// C++ vs JVM, synthetic XMark); the ordering and the growth shapes are the
// reproduced result.
//
// GCX_BENCH_SCALE=N multiplies the document sizes.
// GCX_BENCH_JSON=path overrides where the machine-readable results land
// (default: BENCH_table1.json in the working directory). The JSON is a flat
// array of cells — one object per (query, size, engine) — so the perf
// trajectory across PRs can be diffed and plotted without parsing the table.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

struct JsonCell {
  std::string query;
  uint64_t document_bytes = 0;
  std::string engine;
  gcx::ExecStats stats;
};

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void WriteJson(const std::string& path, const std::vector<JsonCell>& cells) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"rows\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const JsonCell& c = cells[i];
    std::fprintf(f,
                 "  {\"query\": \"%s\", \"document_bytes\": %llu, "
                 "\"engine\": \"%s\", \"wall_seconds\": %.6f, "
                 "\"peak_bytes\": %llu, \"output_bytes\": %llu, "
                 "\"buffer_nodes_peak\": %llu, \"nodes_purged\": %llu, "
                 "\"gc_runs\": %llu}%s\n",
                 JsonEscape(c.query).c_str(),
                 static_cast<unsigned long long>(c.document_bytes),
                 JsonEscape(c.engine).c_str(), c.stats.wall_seconds,
                 static_cast<unsigned long long>(c.stats.peak_bytes),
                 static_cast<unsigned long long>(c.stats.output_bytes),
                 static_cast<unsigned long long>(c.stats.buffer.nodes_peak),
                 static_cast<unsigned long long>(c.stats.buffer.nodes_purged),
                 static_cast<unsigned long long>(c.stats.buffer.gc_runs),
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]");
  gcx::bench::WriteMetricsMember(f);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s (%zu cells)\n", path.c_str(), cells.size());
}

}  // namespace

int main() {
  using namespace gcx;
  using namespace gcx::bench;

  std::vector<double> factors = {1, 2, 4, 8};
  for (double& f : factors) f *= BenchScale();

  std::vector<EngineConfig> engines = Table1Engines();
  std::vector<JsonCell> cells;

  std::printf("Table 1 — time / peak buffer memory (shape reproduction)\n");
  std::printf("%-6s %-9s", "Query", "Size");
  for (const EngineConfig& engine : engines) {
    std::printf(" | %-20s", engine.name);
  }
  std::printf("\n");

  for (const NamedQuery& query : AllXMarkQueries()) {
    // Pre-generate documents once per size.
    for (double factor : factors) {
      std::string doc = GenerateXMark(XMarkOptions{factor, 42});
      std::printf("%-6s %-9s", query.name,
                  HumanBytes(doc.size()).c_str());
      for (const EngineConfig& engine : engines) {
        ExecStats stats = RunCell(query.text, doc, engine.options);
        std::printf(" | %8s / %-9s", HumanSeconds(stats.wall_seconds).c_str(),
                    HumanBytes(stats.peak_bytes).c_str());
        cells.push_back({query.name, doc.size(), engine.name, stats});
      }
      std::printf("\n");
      std::fflush(stdout);
    }
  }

  const char* json_path = std::getenv("GCX_BENCH_JSON");
  WriteJson(json_path != nullptr ? json_path : "BENCH_table1.json", cells);
  return 0;
}
