// Async-source admission scheduling: the interleaving win when one of N
// documents is slow.
//
// Scenario: four document groups submitted to one AdmissionController. The
// FIRST-submitted group's document arrives over a pipe whose writer stalls
// (drip-feeds with sleeps); the other three are in-memory and always
// ready. Two schedules are compared on identical workloads:
//
//   serial       — AdmissionLimits::interleave = false: strict
//                  first-submission group order with blocking waits. The
//                  stalled group gates everything behind it, so the ready
//                  groups cannot finish before the slow writer does.
//   interleaved  — the default ready-batch scheduler: the stalled batch is
//                  parked on its ReadyFd and the ready groups run to
//                  completion meanwhile.
//
// The headline figure is fast_done_seconds — the time at which the LAST
// ready-group result was written — which the serial baseline cannot push
// below the slow writer's total stall time. Outputs of both schedules are
// verified byte-identical (abort on mismatch).
//
// GCX_BENCH_SCALE=N multiplies the document size.
// GCX_BENCH_JSON=path overrides where the results land
// (default: BENCH_async.json in the working directory).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_util.h"
#include "core/admission.h"
#include "core/query_cache.h"
#include "xml/fd_source.h"

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// ostream stamping the wall-clock time of its first write (batch results
/// are written at evaluation time, so this is the query's completion time).
class TimedStream : public std::ostream {
 public:
  explicit TimedStream(Clock::time_point origin)
      : std::ostream(&buf_), buf_(origin) {}
  std::string str() const { return buf_.str(); }
  double done_seconds() const { return buf_.done_seconds; }

 private:
  struct Buf : std::stringbuf {
    explicit Buf(Clock::time_point origin) : origin(origin) {}
    std::streamsize xsputn(const char* s, std::streamsize n) override {
      if (done_seconds < 0 && n > 0) done_seconds = Seconds(origin, Clock::now());
      return std::stringbuf::xsputn(s, n);
    }
    int_type overflow(int_type c) override {
      if (done_seconds < 0 && c != traits_type::eof()) {
        done_seconds = Seconds(origin, Clock::now());
      }
      return std::stringbuf::overflow(c);
    }
    Clock::time_point origin;
    double done_seconds = -1;
  };
  Buf buf_;
};

struct ScheduleResult {
  double fast_done_seconds = 0;  ///< last ready-group result written
  double slow_done_seconds = 0;  ///< stalled group's result written
  double total_seconds = 0;      ///< whole Run() wall clock
  uint64_t stalls = 0;
  std::vector<std::string> outputs;  ///< all query outputs, in order
};

constexpr int kSlowChunks = 5;
constexpr int kSlowStallMs = 25;

/// Runs the 4-group workload under one schedule. `fast_docs` are in-memory;
/// the slow doc drips through a pipe, kSlowChunks pieces with kSlowStallMs
/// sleeps in between.
ScheduleResult RunSchedule(bool interleave, const std::string& slow_doc,
                           const std::vector<std::string>& fast_docs,
                           const std::vector<std::string>& queries) {
  using namespace gcx;
  QueryCache cache;
  AdmissionLimits limits;
  limits.interleave = interleave;
  AdmissionController controller(&cache, limits);

  int fds[2];
  if (::pipe(fds) != 0) std::abort();
  auto source = std::make_shared<std::unique_ptr<ByteSource>>(
      std::make_unique<FdSource>(fds[0]));
  controller.RegisterDocumentAsync(
      "slow", [source]() -> Result<std::unique_ptr<ByteSource>> {
        if (*source == nullptr) return IoError("slow doc: single batch only");
        return std::move(*source);
      });
  for (size_t d = 0; d < fast_docs.size(); ++d) {
    controller.RegisterDocument("fast" + std::to_string(d), fast_docs[d]);
  }

  Clock::time_point origin = Clock::now();
  std::vector<std::unique_ptr<TimedStream>> streams;
  // The slow group is submitted FIRST: strict order puts it in front.
  for (const std::string& q : queries) {
    streams.push_back(std::make_unique<TimedStream>(origin));
    if (!controller.Submit(q, {}, "slow", streams.back().get()).ok()) {
      std::abort();
    }
  }
  for (size_t d = 0; d < fast_docs.size(); ++d) {
    for (const std::string& q : queries) {
      streams.push_back(std::make_unique<TimedStream>(origin));
      if (!controller
               .Submit(q, {}, "fast" + std::to_string(d),
                       streams.back().get())
               .ok()) {
        std::abort();
      }
    }
  }

  std::thread writer([&] {
    size_t chunk = (slow_doc.size() + kSlowChunks - 1) / kSlowChunks;
    for (size_t off = 0; off < slow_doc.size(); off += chunk) {
      std::this_thread::sleep_for(std::chrono::milliseconds(kSlowStallMs));
      size_t n = std::min(chunk, slow_doc.size() - off);
      if (::write(fds[1], slow_doc.data() + off, n) !=
          static_cast<ssize_t>(n)) {
        std::abort();
      }
    }
    ::close(fds[1]);
  });
  auto run = controller.Run();
  writer.join();
  if (!run.ok()) {
    std::fprintf(stderr, "run failed: %s\n", run.status().ToString().c_str());
    std::abort();
  }

  ScheduleResult result;
  result.total_seconds = Seconds(origin, Clock::now());
  result.stalls = run->stalls;
  size_t nq = queries.size();
  for (size_t i = 0; i < streams.size(); ++i) {
    double done = streams[i]->done_seconds();
    if (done < 0) std::abort();  // every query must have produced output
    if (i < nq) {
      result.slow_done_seconds = std::max(result.slow_done_seconds, done);
    } else {
      result.fast_done_seconds = std::max(result.fast_done_seconds, done);
    }
    result.outputs.push_back(streams[i]->str());
  }
  return result;
}

}  // namespace

int main() {
  using namespace gcx;
  using namespace gcx::bench;

  // One shared document content for all groups (different registrations =>
  // different groups), sized by the bench scale.
  std::string doc = GenerateXMark(XMarkOptions{0.5 * BenchScale(), 7});
  std::vector<std::string> fast_docs{doc, doc, doc};
  std::vector<std::string> queries;
  for (const NamedQuery& q : AllXMarkQueries()) {
    queries.push_back(std::string(q.text));
    if (queries.size() == 4) break;
  }

  std::printf("Async admission scheduling — 1 stalled + %zu ready groups\n",
              fast_docs.size());
  std::printf("document: %s, %zu queries per group, slow writer: %d × %d ms\n",
              HumanBytes(doc.size()).c_str(), queries.size(), kSlowChunks,
              kSlowStallMs);

  ScheduleResult serial = RunSchedule(false, doc, fast_docs, queries);
  ScheduleResult inter = RunSchedule(true, doc, fast_docs, queries);

  if (serial.outputs != inter.outputs) {
    std::fprintf(stderr, "OUTPUT MISMATCH between schedules\n");
    std::abort();  // benchmarks must not silently measure wrong results
  }

  double fast_speedup = inter.fast_done_seconds > 0
                            ? serial.fast_done_seconds / inter.fast_done_seconds
                            : 0;
  std::printf("%-12s | %-14s | %-14s | %-10s | %s\n", "schedule",
              "fast done", "slow done", "total", "stalls");
  std::printf("%-12s | %14s | %14s | %10s | %llu\n", "serial",
              HumanSeconds(serial.fast_done_seconds).c_str(),
              HumanSeconds(serial.slow_done_seconds).c_str(),
              HumanSeconds(serial.total_seconds).c_str(),
              static_cast<unsigned long long>(serial.stalls));
  std::printf("%-12s | %14s | %14s | %10s | %llu\n", "interleaved",
              HumanSeconds(inter.fast_done_seconds).c_str(),
              HumanSeconds(inter.slow_done_seconds).c_str(),
              HumanSeconds(inter.total_seconds).c_str(),
              static_cast<unsigned long long>(inter.stalls));
  std::printf("ready-batch completion speedup: %.1fx\n", fast_speedup);

  const char* json_env = std::getenv("GCX_BENCH_JSON");
  std::string path = json_env != nullptr ? json_env : "BENCH_async.json";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"document_bytes\": %zu,\n"
      "  \"queries_per_group\": %zu,\n"
      "  \"ready_groups\": %zu,\n"
      "  \"slow_writer\": {\"chunks\": %d, \"stall_ms\": %d},\n"
      "  \"serial\": {\"fast_done_seconds\": %.6f, \"slow_done_seconds\": "
      "%.6f, \"total_seconds\": %.6f, \"stalls\": %llu},\n"
      "  \"interleaved\": {\"fast_done_seconds\": %.6f, "
      "\"slow_done_seconds\": %.6f, \"total_seconds\": %.6f, \"stalls\": "
      "%llu},\n"
      "  \"fast_path_speedup\": %.3f,\n"
      "  \"outputs_identical\": true",
      doc.size(), queries.size(), fast_docs.size(), kSlowChunks, kSlowStallMs,
      serial.fast_done_seconds, serial.slow_done_seconds,
      serial.total_seconds,
      static_cast<unsigned long long>(serial.stalls),
      inter.fast_done_seconds, inter.slow_done_seconds, inter.total_seconds,
      static_cast<unsigned long long>(inter.stalls), fast_speedup);
  gcx::bench::WriteMetricsMember(f);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}
