// Compiled-query cache + admission: setup cost and end-to-end equivalence.
//
// Three measurements over XMark queries:
//   1. setup sweep — per-query setup (compile) cost for 64 repeated
//      submissions of each XMark query: cold (CompiledQuery::Compile every
//      time) vs warm (QueryCache::GetOrCompile; first submission misses,
//      the rest hit). The headline figure is the cold/warm ratio — the
//      acceptance bar is >= 5x.
//   2. hit-rate sweep — 256 submissions cycling K distinct queries through
//      a capacity-C cache, for (K, C) pairs around and beyond capacity:
//      measures hit rate and evictions (the LRU behaves, no thrash-to-zero).
//   3. admission vs hand-built — the same 8-query workload executed (a)
//      batched by the AdmissionController and (b) as one hand-built
//      MultiQueryEngine batch; outputs must be byte-identical (checked,
//      abort on mismatch) and the wall-clock difference is reported.
//
// GCX_BENCH_SCALE=N multiplies the document size.
// GCX_BENCH_JSON=path overrides where the machine-readable results land
// (default: BENCH_admission.json in the working directory).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/admission.h"
#include "core/multi_engine.h"
#include "core/query_cache.h"

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

struct SetupRow {
  std::string query;
  int submissions = 0;
  double cold_seconds = 0;  ///< total, submissions × Compile
  double warm_seconds = 0;  ///< total, submissions × GetOrCompile
  uint64_t warm_hits = 0;
  double speedup() const {
    return warm_seconds > 0 ? cold_seconds / warm_seconds : 0;
  }
};

struct HitRateRow {
  size_t distinct = 0;
  size_t capacity = 0;
  int submissions = 0;
  uint64_t hits = 0;
  uint64_t compiles = 0;
  uint64_t evictions = 0;
};

struct AdmissionRow {
  size_t queries = 0;
  double admission_seconds = 0;
  double handbuilt_seconds = 0;
  uint64_t admission_batches = 0;
  bool outputs_identical = false;
};

}  // namespace

int main() {
  using namespace gcx;
  using namespace gcx::bench;

  const int kSubmissions = 64;
  std::vector<NamedQuery> pool = AllXMarkQueries();

  // --- 1. setup sweep -------------------------------------------------------
  std::printf("Per-query setup cost, %d repeated submissions\n", kSubmissions);
  std::printf("%-6s | %-12s | %-12s | %-8s\n", "query", "cold", "warm",
              "speedup");
  std::vector<SetupRow> setup_rows;
  for (const NamedQuery& query : pool) {
    SetupRow row;
    row.query = query.name;
    row.submissions = kSubmissions;

    // Best of 3 repetitions each: the warm loop is microseconds of hash
    // lookups, so a single scheduler preemption would otherwise dominate
    // the measurement (CI asserts on the ratio).
    constexpr int kReps = 3;
    row.cold_seconds = 1e30;
    row.warm_seconds = 1e30;
    for (int rep = 0; rep < kReps; ++rep) {
      auto t0 = Clock::now();
      for (int i = 0; i < kSubmissions; ++i) {
        auto compiled = CompiledQuery::Compile(query.text, {});
        if (!compiled.ok()) {
          std::fprintf(stderr, "compile failed: %s\n",
                       compiled.status().ToString().c_str());
          std::abort();
        }
      }
      row.cold_seconds = std::min(row.cold_seconds, Seconds(t0, Clock::now()));

      QueryCache cache;
      auto t1 = Clock::now();
      for (int i = 0; i < kSubmissions; ++i) {
        auto compiled = cache.GetOrCompile(query.text, {});
        if (!compiled.ok()) std::abort();
      }
      row.warm_seconds = std::min(row.warm_seconds, Seconds(t1, Clock::now()));
      row.warm_hits = cache.stats().hits;
    }

    std::printf("%-6s | %10.1fus | %10.1fus | %7.1fx\n", row.query.c_str(),
                row.cold_seconds * 1e6, row.warm_seconds * 1e6, row.speedup());
    setup_rows.push_back(row);
  }

  // --- 2. hit-rate sweep ----------------------------------------------------
  std::printf("\nHit-rate sweep, 256 cycling submissions\n");
  std::printf("%-8s | %-8s | %-8s | %-8s | %-9s\n", "distinct", "capacity",
              "hits", "compiles", "evictions");
  // K distinct query texts: the XMark pool plus numbered variants.
  std::vector<std::string> variants;
  for (size_t k = 0; k < 16; ++k) {
    variants.push_back("<v" + std::to_string(k) + ">{ count(/site/regions) }</v" +
                       std::to_string(k) + ">");
  }
  std::vector<HitRateRow> hit_rows;
  for (auto [distinct, capacity] :
       std::vector<std::pair<size_t, size_t>>{{4, 8}, {8, 8}, {16, 8}, {16, 4}}) {
    QueryCacheOptions cache_options;
    cache_options.capacity = capacity;
    QueryCache cache(cache_options);
    const int submissions = 256;
    for (int i = 0; i < submissions; ++i) {
      auto compiled =
          cache.GetOrCompile(variants[static_cast<size_t>(i) % distinct], {});
      if (!compiled.ok()) std::abort();
    }
    QueryCacheStats s = cache.stats();
    HitRateRow row{distinct, capacity, submissions, s.hits, s.compiles,
                   s.evictions};
    std::printf("%-8zu | %-8zu | %-8llu | %-8llu | %-9llu\n", distinct,
                capacity, static_cast<unsigned long long>(row.hits),
                static_cast<unsigned long long>(row.compiles),
                static_cast<unsigned long long>(row.evictions));
    hit_rows.push_back(row);
  }

  // --- 3. admission vs hand-built batch ------------------------------------
  std::string doc = GenerateXMark(XMarkOptions{2 * BenchScale(), 42});
  std::printf("\nAdmission vs hand-built batch (%s XMark document)\n",
              HumanBytes(doc.size()).c_str());
  AdmissionRow adm;
  adm.queries = 8;

  std::vector<std::string> workload;
  for (size_t i = 0; i < adm.queries; ++i) {
    workload.push_back(std::string(pool[i % pool.size()].text));
  }

  std::vector<std::ostringstream> admission_out(adm.queries);
  {
    QueryCache cache;
    AdmissionController controller(&cache);
    controller.RegisterDocument("doc", doc);
    auto t0 = Clock::now();
    for (size_t i = 0; i < adm.queries; ++i) {
      Status s = controller.Submit(workload[i], {}, "doc", &admission_out[i]);
      if (!s.ok()) std::abort();
    }
    auto run = controller.Run();
    if (!run.ok()) std::abort();
    adm.admission_seconds = Seconds(t0, Clock::now());
    adm.admission_batches = run->batches;
  }

  std::vector<std::ostringstream> handbuilt_out(adm.queries);
  {
    std::vector<CompiledQuery> compiled;
    std::vector<const CompiledQuery*> batch;
    std::vector<std::ostream*> outs;
    auto t0 = Clock::now();
    for (size_t i = 0; i < adm.queries; ++i) {
      auto one = CompiledQuery::Compile(workload[i], {});
      if (!one.ok()) std::abort();
      compiled.push_back(std::move(one).value());
    }
    for (size_t i = 0; i < adm.queries; ++i) {
      batch.push_back(&compiled[i]);
      outs.push_back(&handbuilt_out[i]);
    }
    MultiQueryEngine engine;
    auto stats = engine.Execute(batch, doc, outs);
    if (!stats.ok()) std::abort();
    adm.handbuilt_seconds = Seconds(t0, Clock::now());
  }

  adm.outputs_identical = true;
  for (size_t i = 0; i < adm.queries; ++i) {
    if (admission_out[i].str() != handbuilt_out[i].str()) {
      adm.outputs_identical = false;
      std::fprintf(stderr, "OUTPUT MISMATCH at query %zu\n", i);
      std::abort();  // benchmarks must not silently measure wrong results
    }
  }
  std::printf("admission: %s (%llu batches) | hand-built: %s | identical: %s\n",
              HumanSeconds(adm.admission_seconds).c_str(),
              static_cast<unsigned long long>(adm.admission_batches),
              HumanSeconds(adm.handbuilt_seconds).c_str(),
              adm.outputs_identical ? "yes" : "NO");

  // --- JSON -----------------------------------------------------------------
  const char* json_env = std::getenv("GCX_BENCH_JSON");
  std::string path = json_env != nullptr ? json_env : "BENCH_admission.json";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"setup\": [\n");
  for (size_t i = 0; i < setup_rows.size(); ++i) {
    const SetupRow& r = setup_rows[i];
    std::fprintf(f,
                 "    {\"query\": \"%s\", \"submissions\": %d, "
                 "\"cold_seconds\": %.9f, \"warm_seconds\": %.9f, "
                 "\"speedup\": %.3f, \"warm_hits\": %llu}%s\n",
                 r.query.c_str(), r.submissions, r.cold_seconds,
                 r.warm_seconds, r.speedup(),
                 static_cast<unsigned long long>(r.warm_hits),
                 i + 1 < setup_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"hit_rate\": [\n");
  for (size_t i = 0; i < hit_rows.size(); ++i) {
    const HitRateRow& r = hit_rows[i];
    std::fprintf(f,
                 "    {\"distinct\": %zu, \"capacity\": %zu, "
                 "\"submissions\": %d, \"hits\": %llu, \"compiles\": %llu, "
                 "\"evictions\": %llu}%s\n",
                 r.distinct, r.capacity, r.submissions,
                 static_cast<unsigned long long>(r.hits),
                 static_cast<unsigned long long>(r.compiles),
                 static_cast<unsigned long long>(r.evictions),
                 i + 1 < hit_rows.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"admission\": {\"queries\": %zu, "
               "\"admission_seconds\": %.6f, \"handbuilt_seconds\": %.6f, "
               "\"admission_batches\": %llu, \"outputs_identical\": %s}",
               adm.queries, adm.admission_seconds, adm.handbuilt_seconds,
               static_cast<unsigned long long>(adm.admission_batches),
               adm.outputs_identical ? "true" : "false");
  gcx::bench::WriteMetricsMember(f);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}
