// Multi-query batched execution vs sequential solo runs.
//
// For batches of 2/4/8/16 XMark queries (cycling the adapted scan-bound
// Q1, Q6, Q13, Q20) over one XMark document, measures
//   sequential — N independent Engine::Execute calls (N scans), vs
//   batched    — one MultiQueryEngine::Execute call (1 shared scan).
// The interesting figure is the speedup at growing batch sizes: the raw
// tokenization pass is paid once instead of N times, and subtrees dead for
// every query of the batch are skipped by the merged-DFA prefilter before
// any per-query work happens.
//
// GCX_BENCH_SCALE=N multiplies the document size.
// GCX_BENCH_JSON=path overrides where the machine-readable results land
// (default: BENCH_multiquery.json in the working directory).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/multi_engine.h"

namespace {

struct Row {
  size_t batch_size = 0;
  uint64_t document_bytes = 0;
  double sequential_seconds = 0;
  double batched_seconds = 0;
  uint64_t sequential_bytes_scanned = 0;
  uint64_t batched_bytes_scanned = 0;
  uint64_t events_forwarded = 0;
  uint64_t events_shared_skipped = 0;
  uint64_t replay_log_peak = 0;
  double speedup() const {
    return batched_seconds > 0 ? sequential_seconds / batched_seconds : 0;
  }
};

void WriteJson(const std::string& path, const std::vector<Row>& rows) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "  {\"batch_size\": %zu, \"document_bytes\": %llu, "
        "\"sequential_seconds\": %.6f, \"batched_seconds\": %.6f, "
        "\"speedup\": %.3f, \"sequential_bytes_scanned\": %llu, "
        "\"batched_bytes_scanned\": %llu, \"events_forwarded\": %llu, "
        "\"events_shared_skipped\": %llu, \"replay_log_peak\": %llu}%s\n",
        r.batch_size, static_cast<unsigned long long>(r.document_bytes),
        r.sequential_seconds, r.batched_seconds, r.speedup(),
        static_cast<unsigned long long>(r.sequential_bytes_scanned),
        static_cast<unsigned long long>(r.batched_bytes_scanned),
        static_cast<unsigned long long>(r.events_forwarded),
        static_cast<unsigned long long>(r.events_shared_skipped),
        static_cast<unsigned long long>(r.replay_log_peak),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]");
  gcx::bench::WriteMetricsMember(f);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s (%zu rows)\n", path.c_str(), rows.size());
}

}  // namespace

int main() {
  using namespace gcx;
  using namespace gcx::bench;

  std::string doc = GenerateXMark(XMarkOptions{4 * BenchScale(), 42});
  // The scan-bound XMark queries (the value join Q8 is excluded: its
  // quadratic evaluation cost is identical in both setups and would only
  // dilute the scan-sharing signal this benchmark isolates).
  std::vector<NamedQuery> pool;
  for (const NamedQuery& query : AllXMarkQueries()) {
    if (std::string(query.name) != "Q8") pool.push_back(query);
  }

  std::vector<CompiledQuery> compiled;
  for (const NamedQuery& query : pool) {
    auto one = CompiledQuery::Compile(query.text, {});
    if (!one.ok()) {
      std::fprintf(stderr, "compile failed: %s\n",
                   one.status().ToString().c_str());
      std::abort();
    }
    compiled.push_back(std::move(one).value());
  }

  std::printf("Multi-query batched vs sequential (%s XMark document)\n",
              HumanBytes(doc.size()).c_str());
  std::printf("%-6s | %-12s | %-12s | %-8s | %-14s\n", "N", "sequential",
              "batched", "speedup", "shared-skipped");

  std::vector<Row> rows;
  for (size_t batch_size : {2, 4, 8, 16}) {
    std::vector<const CompiledQuery*> batch;
    for (size_t i = 0; i < batch_size; ++i) {
      batch.push_back(&compiled[i % compiled.size()]);
    }

    Row row;
    row.batch_size = batch_size;
    row.document_bytes = doc.size();

    // Sequential: N solo executions, N scans.
    {
      NullBuffer null_buffer;
      std::ostream null_stream(&null_buffer);
      Engine engine;
      for (const CompiledQuery* query : batch) {
        auto stats = engine.Execute(*query, doc, &null_stream);
        if (!stats.ok()) {
          std::fprintf(stderr, "solo execute failed: %s\n",
                       stats.status().ToString().c_str());
          std::abort();
        }
        row.sequential_seconds += stats->wall_seconds;
        row.sequential_bytes_scanned += stats->input_bytes;
      }
    }

    // Batched: one shared scan.
    {
      std::vector<NullBuffer> null_buffers(batch.size());
      std::vector<std::unique_ptr<std::ostream>> streams;
      std::vector<std::ostream*> outs;
      for (NullBuffer& buffer : null_buffers) {
        streams.push_back(std::make_unique<std::ostream>(&buffer));
        outs.push_back(streams.back().get());
      }
      MultiQueryEngine engine;
      auto start = std::chrono::steady_clock::now();
      auto stats = engine.Execute(batch, doc, outs);
      row.batched_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (!stats.ok()) {
        std::fprintf(stderr, "batched execute failed: %s\n",
                     stats.status().ToString().c_str());
        std::abort();
      }
      row.batched_bytes_scanned = stats->shared.bytes_scanned;
      row.events_forwarded = stats->shared.events_forwarded;
      row.events_shared_skipped = stats->shared.events_shared_skipped;
      row.replay_log_peak = stats->shared.replay_log_peak;
    }

    std::printf("%-6zu | %-12s | %-12s | %7.2fx | %llu events\n", batch_size,
                HumanSeconds(row.sequential_seconds).c_str(),
                HumanSeconds(row.batched_seconds).c_str(), row.speedup(),
                static_cast<unsigned long long>(row.events_shared_skipped));
    std::fflush(stdout);
    rows.push_back(row);
  }

  const char* json_path = std::getenv("GCX_BENCH_JSON");
  WriteJson(json_path != nullptr ? json_path : "BENCH_multiquery.json", rows);
  return 0;
}
