// Metrics overhead A/B: the registry must be free when you don't look at it.
//
// Publishing is fold-at-return (per-run stats are folded into the registry
// once per Execute, not per event), so the expected overhead on a scan-bound
// workload is sub-noise. This bench proves it on bench_throughput's XMark
// workload: the same (query, document) cell runs with metrics enabled and
// with the registry's runtime off-switch thrown, interleaved rep by rep so
// thermal/cache drift hits both cells equally, and reports the relative
// wall-clock delta. The acceptance budget is < 2%; the compile-time escape
// hatch (-DGCX_METRICS_OFF, CMake option GCX_METRICS_OFF) removes even that
// by turning every MetricsSink call into an inline no-op.
//
// GCX_BENCH_SCALE=N multiplies the document size.
// GCX_BENCH_JSON=path overrides the output path
// (default: BENCH_metrics.json in the working directory).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/multi_engine.h"

namespace {

double RunSoloOnce(const gcx::CompiledQuery& compiled, const std::string& doc) {
  gcx::bench::NullBuffer null_buffer;
  std::ostream null_stream(&null_buffer);
  gcx::Engine engine;
  auto start = std::chrono::steady_clock::now();
  auto stats = engine.Execute(compiled, doc, &null_stream);
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (!stats.ok()) {
    std::fprintf(stderr, "execute failed: %s\n",
                 stats.status().ToString().c_str());
    std::abort();
  }
  return seconds;
}

double RunBatchOnce(const std::vector<const gcx::CompiledQuery*>& batch,
                    const std::string& doc) {
  std::vector<gcx::bench::NullBuffer> null_buffers(batch.size());
  std::vector<std::unique_ptr<std::ostream>> streams;
  std::vector<std::ostream*> outs;
  for (gcx::bench::NullBuffer& buffer : null_buffers) {
    streams.push_back(std::make_unique<std::ostream>(&buffer));
    outs.push_back(streams.back().get());
  }
  gcx::MultiQueryEngine engine;
  auto start = std::chrono::steady_clock::now();
  auto stats = engine.Execute(batch, doc, outs);
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (!stats.ok()) {
    std::fprintf(stderr, "batched execute failed: %s\n",
                 stats.status().ToString().c_str());
    std::abort();
  }
  return seconds;
}

struct Cell {
  std::string mode;  // "solo" | "batch8"
  double on_seconds = 1e30;
  double off_seconds = 1e30;
  double overhead_percent() const {
    return off_seconds > 0 ? (on_seconds / off_seconds - 1.0) * 100.0 : 0;
  }
};

}  // namespace

int main() {
  using namespace gcx;
  using namespace gcx::bench;

  const int reps = 7;
  std::string xmark = GenerateXMark(XMarkOptions{8 * BenchScale(), 42});

  auto q6 = CompiledQuery::Compile(XMarkQ6(), {});
  if (!q6.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 q6.status().ToString().c_str());
    return 1;
  }
  std::vector<CompiledQuery> compiled;
  for (const NamedQuery& query : AllXMarkQueries()) {
    if (std::string(query.name) == "Q8") continue;
    auto one = CompiledQuery::Compile(query.text, {});
    if (!one.ok()) {
      std::fprintf(stderr, "compile failed: %s\n",
                   one.status().ToString().c_str());
      return 1;
    }
    compiled.push_back(std::move(one).value());
  }
  std::vector<const CompiledQuery*> batch;
  for (size_t i = 0; i < 8; ++i) batch.push_back(&compiled[i % compiled.size()]);

  MetricsRegistry& registry = MetricsRegistry::Global();
  Cell solo{"solo"};
  Cell batch8{"batch8"};
  // Interleave the A/B cells so drift (CPU frequency, page cache) cannot
  // bias one side; min-of-reps discards the noise tail.
  for (int rep = 0; rep < reps; ++rep) {
    registry.set_enabled(true);
    solo.on_seconds = std::min(solo.on_seconds, RunSoloOnce(*q6, xmark));
    batch8.on_seconds = std::min(batch8.on_seconds, RunBatchOnce(batch, xmark));
    registry.set_enabled(false);
    solo.off_seconds = std::min(solo.off_seconds, RunSoloOnce(*q6, xmark));
    batch8.off_seconds =
        std::min(batch8.off_seconds, RunBatchOnce(batch, xmark));
  }
  registry.set_enabled(true);

#ifdef GCX_METRICS_OFF
  const bool compiled_out = true;
#else
  const bool compiled_out = false;
#endif

  std::printf("%-7s | %-12s | %-12s | %-10s\n", "mode", "on (s)", "off (s)",
              "overhead");
  for (const Cell* cell : {&solo, &batch8}) {
    std::printf("%-7s | %12.6f | %12.6f | %+9.2f%%\n", cell->mode.c_str(),
                cell->on_seconds, cell->off_seconds,
                cell->overhead_percent());
  }
  std::printf("metrics compiled out: %s\n", compiled_out ? "yes" : "no");
  std::fflush(stdout);

  const char* json_env = std::getenv("GCX_BENCH_JSON");
  std::string path = json_env != nullptr ? json_env : "BENCH_metrics.json";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"document_bytes\": %zu,\n  \"budget_percent\": 2.0,\n"
               "  \"compiled_out\": %s,\n  \"rows\": [\n",
               xmark.size(), compiled_out ? "true" : "false");
  const Cell* cells[] = {&solo, &batch8};
  for (size_t i = 0; i < 2; ++i) {
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"on_seconds\": %.6f, "
                 "\"off_seconds\": %.6f, \"overhead_percent\": %.3f}%s\n",
                 cells[i]->mode.c_str(), cells[i]->on_seconds,
                 cells[i]->off_seconds, cells[i]->overhead_percent(),
                 i + 1 < 2 ? "," : "");
  }
  std::fprintf(f, "  ]");
  gcx::bench::WriteMetricsMember(f);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}
