// Micro-benchmarks of the substrates: scanner throughput, DFA transition
// cost, buffer role/GC operations. Backs the paper's claim that "the
// overhead imposed by the buffer cleanup algorithm is small in practice"
// (Sec. 5).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "buffer/buffer_tree.h"
#include "projection/dfa.h"
#include "xml/dom.h"
#include "xml/scanner.h"
#include "xq/normalize.h"
#include "xq/parser.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace {

using namespace gcx;
using namespace gcx::bench;

const std::string& Doc() {
  static const std::string* doc =
      new std::string(GenerateXMark(XMarkOptions{2 * BenchScale(), 42}));
  return *doc;
}

void BM_ScannerThroughput(benchmark::State& state) {
  for (auto _ : state) {
    XmlScanner scanner(std::make_unique<StringSource>(Doc()));
    XmlEvent event;
    uint64_t count = 0;
    do {
      Status status = scanner.Next(&event);
      GCX_CHECK(status.ok());
      ++count;
    } while (event.kind != XmlEvent::Kind::kEndOfDocument);
    benchmark::DoNotOptimize(count);
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() * Doc().size()));
}
BENCHMARK(BM_ScannerThroughput)->Unit(benchmark::kMillisecond);

void BM_DomParse(benchmark::State& state) {
  for (auto _ : state) {
    auto doc = ParseDom(Doc());
    GCX_CHECK(doc.ok());
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() * Doc().size()));
}
BENCHMARK(BM_DomParse)->Unit(benchmark::kMillisecond);

void BM_ProjectionOnly(benchmark::State& state) {
  // Projection + role assignment without evaluation (materialize mode
  // without the evaluator): isolates projector + buffer insert cost.
  auto compiled = CompiledQuery::Compile(XMarkQ1());
  GCX_CHECK(compiled.ok());
  for (auto _ : state) {
    SymbolTable tags;
    BufferTree buffer;
    XmlScanner scanner(std::make_unique<StringSource>(Doc()));
    StreamProjector projector(&compiled->analyzed().projection,
                              &compiled->analyzed().roles, &tags, &scanner,
                              &buffer);
    while (true) {
      auto more = projector.Advance();
      GCX_CHECK(more.ok());
      if (!*more) break;
    }
    benchmark::DoNotOptimize(buffer.stats().nodes_created);
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() * Doc().size()));
}
BENCHMARK(BM_ProjectionOnly)->Unit(benchmark::kMillisecond);

void BM_BufferRoleChurn(benchmark::State& state) {
  // Hot add/remove of roles on a fixed tree: the per-signOff cost.
  for (auto _ : state) {
    BufferTree buffer;
    BufferNode* parent = buffer.root();
    std::vector<BufferNode*> nodes;
    for (int depth = 0; depth < 8; ++depth) {
      parent = buffer.AppendElement(parent, depth);
      nodes.push_back(parent);
    }
    for (int round = 0; round < 1000; ++round) {
      for (BufferNode* node : nodes) {
        buffer.AddRole(node, 1, 1, false);
      }
      for (BufferNode* node : nodes) {
        buffer.RemoveRole(node, 1, 1);
      }
    }
    benchmark::DoNotOptimize(buffer.stats().gc_runs);
  }
}
BENCHMARK(BM_BufferRoleChurn);

void BM_GcPurgeChains(benchmark::State& state) {
  // Builds sibling chains and purges them one by one (Fig. 10 loop).
  for (auto _ : state) {
    BufferTree buffer;
    std::vector<BufferNode*> leaves;
    for (int i = 0; i < 1000; ++i) {
      BufferNode* mid = buffer.AppendElement(buffer.root(), 0);
      BufferNode* leaf = buffer.AppendElement(mid, 1);
      buffer.AddRole(leaf, 1, 1, false);
      buffer.Finish(leaf);
      buffer.Finish(mid);
      leaves.push_back(leaf);
    }
    for (BufferNode* leaf : leaves) buffer.RemoveRole(leaf, 1, 1);
    GCX_CHECK(buffer.stats().nodes_current == 1);  // only the root remains
  }
}
BENCHMARK(BM_GcPurgeChains);

void BM_CompileXMarkQueries(benchmark::State& state) {
  for (auto _ : state) {
    for (const NamedQuery& query : AllXMarkQueries()) {
      auto compiled = CompiledQuery::Compile(query.text);
      GCX_CHECK(compiled.ok());
      benchmark::DoNotOptimize(compiled);
    }
  }
}
BENCHMARK(BM_CompileXMarkQueries);

void BM_DfaTransitions(benchmark::State& state) {
  // Transition lookups over a memoized DFA (the per-start-tag cost).
  auto compiled = CompiledQuery::Compile(XMarkQ6());
  GCX_CHECK(compiled.ok());
  SymbolTable tags;
  LazyDfa dfa(&compiled->analyzed().projection, &compiled->analyzed().roles,
              &tags);
  TagId site = tags.Intern("site");
  TagId regions = tags.Intern("regions");
  TagId africa = tags.Intern("africa");
  TagId item = tags.Intern("item");
  TagId name = tags.Intern("name");
  for (auto _ : state) {
    DfaState* s0 = dfa.initial();
    DfaState* s1 = dfa.Transition(s0, site);
    DfaState* s2 = dfa.Transition(s1, regions);
    DfaState* s3 = dfa.Transition(s2, africa);
    DfaState* s4 = dfa.Transition(s3, item);
    DfaState* s5 = dfa.Transition(s4, name);
    benchmark::DoNotOptimize(s5);
  }
}
BENCHMARK(BM_DfaTransitions);

}  // namespace

BENCHMARK_MAIN();
