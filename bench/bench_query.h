// google-benchmark registration shared by the per-query binaries
// bench_q{1,6,8,13,20} (one binary per Table 1 block).

#ifndef GCX_BENCH_BENCH_QUERY_H_
#define GCX_BENCH_BENCH_QUERY_H_

#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "bench_util.h"

namespace gcx::bench {

/// Documents are generated once per factor and shared across benchmarks.
inline const std::string& DocumentForFactor(int factor) {
  static std::map<int, std::string>* cache = new std::map<int, std::string>();
  auto it = cache->find(factor);
  if (it == cache->end()) {
    it = cache
             ->emplace(factor, GenerateXMark(XMarkOptions{
                                   factor * BenchScale(), 42}))
             .first;
  }
  return it->second;
}

/// Registers <query>/<engine>/<factor> benchmarks. Counters: PeakBytes
/// (buffer high watermark), InputMB/s (scan throughput).
inline void RegisterQueryBenchmarks(const char* query_name,
                                    std::string_view query_text) {
  for (const EngineConfig& engine : Table1Engines()) {
    for (int factor : {1, 2, 4}) {
      std::string name = std::string(query_name) + "/" + engine.name + "/x" +
                         std::to_string(factor);
      EngineOptions options = engine.options;
      std::string text(query_text);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [options, text, factor](benchmark::State& state) {
            const std::string& doc = DocumentForFactor(factor);
            uint64_t peak = 0;
            for (auto _ : state) {
              ExecStats stats = RunCell(text, doc, options);
              peak = stats.peak_bytes;
            }
            state.counters["PeakBytes"] = static_cast<double>(peak);
            state.SetBytesProcessed(
                static_cast<int64_t>(state.iterations() * doc.size()));
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace gcx::bench

#endif  // GCX_BENCH_BENCH_QUERY_H_
