// Shared helpers for the benchmark harness.
//
// Allocation counting: a benchmark that wants allocations-per-event figures
// defines GCX_BENCH_COUNT_ALLOCS before including this header (in exactly
// one translation unit — the replacement operator new/delete are global).
// Counting is off until an AllocCounterScope is alive, so setup noise
// (document generation, query compilation) is excluded for free.

#ifndef GCX_BENCH_BENCH_UTIL_H_
#define GCX_BENCH_BENCH_UTIL_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "core/engine.h"
#include "xmark/generator.h"
#include "xmark/queries.h"

#ifdef GCX_BENCH_COUNT_ALLOCS

namespace gcx::bench {
inline std::atomic<uint64_t> g_alloc_count{0};
inline std::atomic<bool> g_alloc_counting{false};

/// RAII window: heap allocations made while a scope is alive are counted.
class AllocCounterScope {
 public:
  AllocCounterScope() {
    start_ = g_alloc_count.load(std::memory_order_relaxed);
    g_alloc_counting.store(true, std::memory_order_relaxed);
  }
  ~AllocCounterScope() { g_alloc_counting.store(false, std::memory_order_relaxed); }
  uint64_t count() const {
    return g_alloc_count.load(std::memory_order_relaxed) - start_;
  }

 private:
  uint64_t start_ = 0;
};
}  // namespace gcx::bench

void* operator new(std::size_t size) {
  if (gcx::bench::g_alloc_counting.load(std::memory_order_relaxed)) {
    gcx::bench::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
// Over-aligned forms: without these, a per-event SIMD-aligned allocation
// would bypass the counter and the CI ceiling would miss the regression.
void* operator new(std::size_t size, std::align_val_t align) {
  if (gcx::bench::g_alloc_counting.load(std::memory_order_relaxed)) {
    gcx::bench::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  std::size_t a = static_cast<std::size_t>(align);
  std::size_t rounded = (size + a - 1) / a * a;  // aligned_alloc precondition
  void* p = std::aligned_alloc(a, rounded ? rounded : a);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // GCX_BENCH_COUNT_ALLOCS

namespace gcx::bench {

/// A sink that counts bytes and discards them (query output is not the
/// object of measurement).
class NullBuffer : public std::streambuf {
 public:
  int overflow(int c) override { return c; }
  std::streamsize xsputn(const char*, std::streamsize n) override { return n; }
};

/// Global scale multiplier: GCX_BENCH_SCALE=4 runs 4× larger documents.
inline double BenchScale() {
  const char* env = std::getenv("GCX_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

/// Engine configurations benchmarked against each other (the paper's
/// Table 1 column set) — the standard set from the public API, shared with
/// the conformance suite.
using EngineConfig = NamedEngineConfig;

inline std::vector<EngineConfig> Table1Engines() {
  return StandardEngineConfigs();
}

/// Runs one (query, document, config) cell; aborts on error (benchmarks
/// must not silently measure failures).
inline ExecStats RunCell(std::string_view query, const std::string& doc,
                         const EngineOptions& options) {
  auto compiled = CompiledQuery::Compile(query, options);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 compiled.status().ToString().c_str());
    std::abort();
  }
  NullBuffer null_buffer;
  std::ostream null_stream(&null_buffer);
  Engine engine;
  auto stats = engine.Execute(*compiled, doc, &null_stream);
  if (!stats.ok()) {
    std::fprintf(stderr, "execute failed: %s\n",
                 stats.status().ToString().c_str());
    std::abort();
  }
  return *stats;
}

/// Appends the process-wide metrics snapshot as a trailing `"metrics"`
/// member of an already-open JSON object (caller has written the previous
/// member WITHOUT a trailing comma and not yet closed the object). Every
/// BENCH_*.json embeds the snapshot this way, so a bench artifact carries
/// the cumulative pipeline counters (scanner/projector/buffer/cache/...)
/// alongside its measurements.
inline void WriteMetricsMember(FILE* f) {
  std::string snapshot = MetricsRegistry::Global().SnapshotJson();
  while (!snapshot.empty() && snapshot.back() == '\n') snapshot.pop_back();
  std::fprintf(f, ",\n  \"metrics\": %s\n", snapshot.c_str());
}

/// "1.2MB" style rendering.
inline std::string HumanBytes(uint64_t bytes) {
  char buf[32];
  if (bytes >= 10ull * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.0fMB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else if (bytes >= 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fMB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fKB",
                  static_cast<double>(bytes) / 1024.0);
  }
  return buf;
}

inline std::string HumanSeconds(double s) {
  char buf[32];
  if (s >= 60) {
    std::snprintf(buf, sizeof(buf), "%d:%05.2f", static_cast<int>(s) / 60,
                  s - 60 * (static_cast<int>(s) / 60));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", s);
  }
  return buf;
}

}  // namespace gcx::bench

#endif  // GCX_BENCH_BENCH_UTIL_H_
