// Ablation of the Sec. 6 optimizations and of active GC itself
// (the design choices called out in DESIGN.md).
//
// Rows: engine variants with exactly one technique disabled.
//   full        — everything on (= Table 1's GCX column)
//   -gc         — signOffs not executed, no purging
//   -aggregate  — per-node dos roles instead of aggregate roles
//   -redundant  — redundant binding roles kept
//   -early      — no early-update rewriting of output paths
// Reported per query (factor fixed): time, peak bytes, peak nodes, role
// instances assigned, GC runs.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

int main() {
  using namespace gcx;
  using namespace gcx::bench;

  double factor = 4 * BenchScale();
  std::string doc = GenerateXMark(XMarkOptions{factor, 42});

  struct Variant {
    const char* name;
    EngineOptions options;
  };
  std::vector<Variant> variants;
  variants.push_back({"full", {}});
  {
    EngineOptions o;
    o.enable_gc = false;
    variants.push_back({"-gc", o});
  }
  {
    EngineOptions o;
    o.aggregate_roles = false;
    variants.push_back({"-aggregate", o});
  }
  {
    EngineOptions o;
    o.eliminate_redundant_roles = false;
    variants.push_back({"-redundant", o});
  }
  {
    EngineOptions o;
    o.early_updates = false;
    variants.push_back({"-early", o});
  }

  std::printf("Ablation on %s XMark document\n",
              HumanBytes(doc.size()).c_str());
  std::printf("%-6s %-11s %9s %10s %10s %12s %10s\n", "Query", "Variant",
              "time", "peak", "peakNodes", "rolesAssign", "gcRuns");
  for (const NamedQuery& query : AllXMarkQueries()) {
    for (const Variant& variant : variants) {
      ExecStats stats = RunCell(query.text, doc, variant.options);
      std::printf("%-6s %-11s %9s %10s %10llu %12llu %10llu\n", query.name,
                  variant.name, HumanSeconds(stats.wall_seconds).c_str(),
                  HumanBytes(stats.peak_bytes).c_str(),
                  static_cast<unsigned long long>(stats.buffer.nodes_peak),
                  static_cast<unsigned long long>(stats.buffer.roles_assigned),
                  static_cast<unsigned long long>(stats.buffer.gc_runs));
      std::fflush(stdout);
    }
  }
  return 0;
}
