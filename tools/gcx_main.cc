// gcx — streaming XQuery processor (command-line front end).
//
// Usage:
//   gcx [options] <query.xq|-q QUERY> [input.xml]
//
// Reads the query from a file (or inline via -q), evaluates it over the
// input document (file or stdin) in streaming mode with active garbage
// collection, and writes the result to stdout.
//
// Options:
//   -q QUERY          inline query text instead of a query file
//   -o FILE           write the result to FILE instead of stdout
//   --explain         print the static analysis (variable tree, roles,
//                     projection tree, rewritten query) and exit
//   --stats           print execution statistics to stderr
//   --trace           dump the buffer after every input token (Fig. 2 style)
//   --mode=MODE       streaming (default) | project | dom
//   --no-gc           disable signOff execution and purging
//   --no-aggregate    disable aggregate roles (Sec. 6)
//   --no-redundant    disable redundant-role elimination (Sec. 6)
//   --no-early        disable early updates (Sec. 6)
//   --keep-ws         keep whitespace-only text nodes
//   --drop-attributes discard attributes instead of converting them to
//                     subelements

#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include "core/engine.h"

namespace {

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [options] <query.xq|-q QUERY> [input.xml]\n"
               "run '"
            << argv0 << " --help' for options\n";
  return 2;
}

void Help(const char* argv0) {
  std::cout
      << "gcx — streaming XQuery processor with active garbage collection\n"
         "\n"
         "usage: "
      << argv0
      << " [options] <query.xq|-q QUERY> [input.xml]\n"
         "\n"
         "With no input file (or '-'), the document is read from stdin.\n"
         "\n"
         "options:\n"
         "  -q QUERY          inline query text\n"
         "  -o FILE           write result to FILE\n"
         "  --explain         print static analysis and exit\n"
         "  --project-only    emit the projected document, don't evaluate\n"
         "  --stats           print execution statistics to stderr\n"
         "  --trace           dump the buffer after every input token\n"
         "  --mode=MODE       streaming (default) | project | dom\n"
         "  --no-gc           disable active garbage collection\n"
         "  --no-aggregate    disable aggregate roles\n"
         "  --no-redundant    disable redundant-role elimination\n"
         "  --no-early        disable early updates\n"
         "  --keep-ws         keep whitespace-only text\n"
         "  --drop-attributes discard attributes\n";
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  gcx::EngineOptions options;
  std::string query_text;
  std::string query_path;
  std::string input_path;
  std::string output_path;
  bool explain = false;
  bool project_only = false;
  bool stats_flag = false;
  bool trace = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      Help(argv[0]);
      return 0;
    } else if (arg == "-q") {
      if (++i >= argc) return Usage(argv[0]);
      query_text = argv[i];
    } else if (arg == "-o") {
      if (++i >= argc) return Usage(argv[0]);
      output_path = argv[i];
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--project-only") {
      project_only = true;
    } else if (arg == "--stats") {
      stats_flag = true;
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--no-gc") {
      options.enable_gc = false;
    } else if (arg == "--no-aggregate") {
      options.aggregate_roles = false;
    } else if (arg == "--no-redundant") {
      options.eliminate_redundant_roles = false;
    } else if (arg == "--no-early") {
      options.early_updates = false;
    } else if (arg == "--keep-ws") {
      options.scanner.skip_whitespace_text = false;
    } else if (arg == "--drop-attributes") {
      options.scanner.attribute_mode =
          gcx::ScannerOptions::AttributeMode::kDiscard;
    } else if (arg.rfind("--mode=", 0) == 0) {
      std::string mode = arg.substr(7);
      if (mode == "streaming") {
        options.mode = gcx::EngineMode::kStreaming;
      } else if (mode == "project") {
        options.mode = gcx::EngineMode::kMaterializedProjection;
      } else if (mode == "dom") {
        options.mode = gcx::EngineMode::kNaiveDom;
      } else {
        std::cerr << "unknown mode '" << mode << "'\n";
        return 2;
      }
    } else if (arg.rfind("-", 0) == 0 && arg != "-") {
      std::cerr << "unknown option '" << arg << "'\n";
      return Usage(argv[0]);
    } else if (query_text.empty() && query_path.empty()) {
      query_path = arg;
    } else if (input_path.empty()) {
      input_path = arg;
    } else {
      return Usage(argv[0]);
    }
  }

  if (query_text.empty() && query_path.empty()) return Usage(argv[0]);
  if (!query_path.empty() && !ReadFile(query_path, &query_text)) {
    std::cerr << "cannot read query file '" << query_path << "'\n";
    return 1;
  }

  auto compiled = gcx::CompiledQuery::Compile(query_text, options);
  if (!compiled.ok()) {
    std::cerr << "compile error: " << compiled.status().ToString() << "\n";
    return 1;
  }
  if (explain) {
    std::cout << compiled->Explain();
    return 0;
  }

  // Input source: file (streamed) or stdin.
  std::unique_ptr<gcx::ByteSource> source;
  std::ifstream input_file;
  if (input_path.empty() || input_path == "-") {
    source = std::make_unique<gcx::IstreamSource>(&std::cin);
  } else {
    input_file.open(input_path, std::ios::binary);
    if (!input_file) {
      std::cerr << "cannot read input file '" << input_path << "'\n";
      return 1;
    }
    source = std::make_unique<gcx::IstreamSource>(&input_file);
  }

  std::ofstream output_file;
  std::ostream* out = &std::cout;
  if (!output_path.empty()) {
    output_file.open(output_path, std::ios::binary);
    if (!output_file) {
      std::cerr << "cannot write output file '" << output_path << "'\n";
      return 1;
    }
    out = &output_file;
  }

  gcx::Engine engine;
  if (trace) {
    engine.set_trace([](const gcx::XmlEvent& event,
                        const gcx::BufferTree& buffer,
                        const gcx::SymbolTable& tags) {
      std::cerr << "-- ";
      switch (event.kind) {
        case gcx::XmlEvent::Kind::kStartElement:
          std::cerr << "<" << event.name << ">";
          break;
        case gcx::XmlEvent::Kind::kEndElement:
          std::cerr << "</" << event.name << ">";
          break;
        case gcx::XmlEvent::Kind::kText:
          std::cerr << "text(" << event.text.size() << " bytes)";
          break;
        case gcx::XmlEvent::Kind::kEndOfDocument:
          std::cerr << "end-of-document";
          break;
      }
      std::cerr << "\n" << buffer.Dump(tags);
    });
  }

  gcx::Result<gcx::ExecStats> stats = gcx::EvalError("unreachable");
  if (project_only) {
    // Materialize the whole input (projection needs a string view here).
    std::string document;
    char chunk[1 << 16];
    while (size_t n = source->Read(chunk, sizeof(chunk))) {
      document.append(chunk, n);
    }
    stats = engine.Project(*compiled, document, out);
  } else {
    stats = engine.Execute(*compiled, std::move(source), out);
  }
  if (!stats.ok()) {
    std::cerr << "error: " << stats.status().ToString() << "\n";
    return 1;
  }
  *out << "\n";

  if (stats_flag) {
    std::cerr << "input bytes:       " << stats->input_bytes << "\n"
              << "output bytes:      " << stats->output_bytes << "\n"
              << "wall time:         " << stats->wall_seconds << " s\n"
              << "peak buffer bytes: " << stats->peak_bytes << "\n"
              << "peak buffer nodes: " << stats->buffer.nodes_peak << "\n"
              << "nodes buffered:    " << stats->buffer.nodes_created << "\n"
              << "nodes purged:      " << stats->buffer.nodes_purged << "\n"
              << "roles assigned:    " << stats->buffer.roles_assigned << "\n"
              << "roles removed:     " << stats->buffer.roles_removed << "\n"
              << "GC runs:           " << stats->buffer.gc_runs << "\n"
              << "DFA states:        " << stats->dfa_states << "\n";
  }
  return 0;
}
