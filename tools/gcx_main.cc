// gcx — streaming XQuery processor (command-line front end).
//
// Usage:
//   gcx [options] <query.xq|-q QUERY> [input.xml]
//   gcx -q a.xq -q b.xq [-q ...] input.xml      (multi-query batch)
//
// Reads the query from a file (or inline via -q), evaluates it over the
// input document (file or stdin) in streaming mode with active garbage
// collection, and writes the result to stdout. With several -q flags the
// queries are executed as one batch sharing a single document scan
// (MultiQueryEngine); each query's result is printed in submission order.
//
// Options:
//   -q QUERY          a query: a file path, or inline query text when no
//                     such file exists; repeatable (batch execution)
//   -o FILE           write the result to FILE instead of stdout
//   --explain         print the static analysis (variable tree, roles,
//                     projection tree, rewritten query) and exit
//   --stats           print execution statistics to stderr
//   --cache-stats     print compiled-query cache counters to stderr
//                     (repeated -q texts compile once per process)
//   --admission       route a multi-query run through the admission
//                     controller (grouping + batch limits) instead of one
//                     hand-built batch
//   --admission-batch=N    admission: max queries per batch (default 16)
//   --admission-memory=N   admission: replay-log budget in events (0 = off)
//   --admission-serial     admission: strict first-submission order with
//                     blocking waits (disables ready-batch interleaving)
//   --admission-adaptive   admission: self-tune the effective batch cap
//                     (and shard count) from observed stall/memory pressure
//   --admission-arena-budget=N  admission: replay-arena byte budget for the
//                     adaptive memory-pressure signal (implies adaptive)
//   --shards=N        scan a stored document on N parallel shards
//                     (core/shard.h); the input is materialized, split at
//                     subtree boundaries and scanned on a worker pool,
//                     with output byte-identical to the single scan.
//                     Applies to the direct path and (for in-memory
//                     documents) to --admission; falls back to one scan
//                     when the document is too small to split
//   --follow          open the input path as a non-blocking stream (FIFO,
//                     character device): the engine consumes bytes as the
//                     writer produces them instead of requiring a regular
//                     file
//   --input-fd=N      read the document from the already-open descriptor N
//                     (non-blocking; e.g. a pipe inherited from a parent)
//   --metrics-json=FILE  dump one JSON snapshot of the process-wide metrics
//                     registry (scanner/projector/buffer/cache/admission/
//                     shard families) after the run; FILE '-' = stdout
//   --deadline-ms=N   wall-clock deadline for the whole run; a run (even
//                     one parked on a stalled stream) terminates with a
//                     typed deadline error shortly after N ms
//   --max-arena-bytes=N   cap on live replay/buffer arena bytes; exceeding
//                     it fails (or, under --admission, degrades) the run
//   --max-output-bytes=N  cap on total result bytes written
//
// Exit codes: 0 success; 1 runtime error; 2 usage error; 3 compile error;
// 4 deadline exceeded or a resource budget tripped (including queries shed
// by admission degradation).
//   --trace           dump the buffer after every input token (Fig. 2 style)
//   --mode=MODE       streaming (default) | project | dom
//   --no-gc           disable signOff execution and purging
//   --no-aggregate    disable aggregate roles (Sec. 6)
//   --no-redundant    disable redundant-role elimination (Sec. 6)
//   --no-early        disable early updates (Sec. 6)
//   --keep-ws         keep whitespace-only text nodes
//   --drop-attributes discard attributes instead of converting them to
//                     subelements

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include <vector>

#include "common/budget.h"
#include "common/metrics.h"
#include "core/admission.h"
#include "core/engine.h"
#include "core/multi_engine.h"
#include "core/query_cache.h"
#include "core/shard.h"
#include "xml/fd_source.h"

namespace {

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [options] <query.xq|-q QUERY> [input.xml]\n"
               "run '"
            << argv0 << " --help' for options\n";
  return 2;
}

void Help(const char* argv0) {
  std::cout
      << "gcx — streaming XQuery processor with active garbage collection\n"
         "\n"
         "usage: "
      << argv0
      << " [options] <query.xq|-q QUERY> [input.xml]\n"
         "\n"
         "With no input file (or '-'), the document is read from stdin.\n"
         "\n"
         "options:\n"
         "  -q QUERY          query file path or inline query text;\n"
         "                    repeatable — N queries share one document scan\n"
         "  -o FILE           write result to FILE\n"
         "  --explain         print static analysis and exit\n"
         "  --project-only    emit the projected document, don't evaluate\n"
         "  --stats           print execution statistics to stderr\n"
         "  --cache-stats     print compiled-query cache counters to stderr\n"
         "  --admission       route a multi-query run through the admission\n"
         "                    controller (grouping + batch limits)\n"
         "  --admission-batch=N   admission: max queries per batch\n"
         "  --admission-memory=N  admission: replay-log budget in events\n"
         "  --admission-serial    admission: strict order, no interleaving\n"
         "  --admission-adaptive  admission: self-tune batch cap / shards\n"
         "  --admission-arena-budget=N  adaptive replay-arena byte budget\n"
         "  --metrics-json=FILE   dump a metrics snapshot (JSON) after the\n"
         "                    run; '-' writes it to stdout\n"
         "  --deadline-ms=N   wall-clock deadline for the run (exit 4)\n"
         "  --max-arena-bytes=N   cap live replay/buffer arena bytes\n"
         "  --max-output-bytes=N  cap total result bytes written\n"
         "  --shards=N        parallel sharded scan of a stored document\n"
         "  --follow          stream the input path (FIFO/device) as the\n"
         "                    writer produces it\n"
         "  --input-fd=N      read the document from open descriptor N\n"
         "  --trace           dump the buffer after every input token\n"
         "  --mode=MODE       streaming (default) | project | dom\n"
         "  --no-gc           disable active garbage collection\n"
         "  --no-aggregate    disable aggregate roles\n"
         "  --no-redundant    disable redundant-role elimination\n"
         "  --no-early        disable early updates\n"
         "  --keep-ws         keep whitespace-only text\n"
         "  --drop-attributes discard attributes\n";
}

bool ReadFile(const std::string& path, std::string* out) {
  // Directories open successfully and read as empty on Linux, which would
  // surface as a baffling empty-query parse error; reject them up front.
  // (Only directories: FIFOs from process substitution and character
  // devices like /dev/stdin are legitimate query sources.)
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) return false;
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return false;
  *out = buffer.str();
  return true;
}

/// Re-openable file source for the admission path (a document may be
/// scanned once per batch); owns its stream, unlike IstreamSource.
class OwningFileSource : public gcx::ByteSource {
 public:
  explicit OwningFileSource(const std::string& path)
      : in_(path, std::ios::binary) {}
  ReadResult Read(char* buffer, size_t capacity) override {
    in_.read(buffer, static_cast<std::streamsize>(capacity));
    size_t n = static_cast<size_t>(in_.gcount());
    return n > 0 ? ReadResult::Ok(n) : ReadResult::Eof();
  }

 private:
  std::ifstream in_;
};

/// Streambuf forwarding to a shared target, emitting one '\n' separator
/// before the first forwarded byte. Batched queries evaluate strictly in
/// submission order, so giving query i>0 such a wrapper streams the batch
/// output with solo formatting (result, newline, result, ...) and no
/// per-query buffering.
class SeparatedBuf : public std::streambuf {
 public:
  SeparatedBuf(std::ostream* target, bool separator_first)
      : target_(target), pending_separator_(separator_first) {}

 protected:
  int overflow(int c) override {
    if (c == traits_type::eof()) return c;
    EmitSeparator();
    target_->put(static_cast<char>(c));
    return c;
  }
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    if (n > 0) EmitSeparator();
    target_->write(s, n);
    return n;
  }

 private:
  void EmitSeparator() {
    if (pending_separator_) {
      target_->put('\n');
      pending_separator_ = false;
    }
  }
  std::ostream* target_;
  bool pending_separator_;
};

}  // namespace

/// One -q submission: its text plus where it came from (for diagnostics).
struct QuerySpec {
  std::string text;
  std::string label;  ///< file path, or "inline query #k"
};

int main(int argc, char** argv) {
  // Result emission goes through the buffered XmlWriter in large blocks;
  // don't pay C-stdio synchronization on top when that block lands on cout.
  std::ios::sync_with_stdio(false);
  gcx::EngineOptions options;
  std::vector<QuerySpec> query_specs;
  std::string query_path;
  std::string input_path;
  std::string output_path;
  bool explain = false;
  bool project_only = false;
  bool stats_flag = false;
  bool cache_stats_flag = false;
  bool admission_flag = false;
  size_t admission_batch = 16;
  uint64_t admission_memory = 0;
  bool admission_serial = false;
  bool admission_adaptive = false;
  uint64_t admission_arena_budget = 0;
  std::string metrics_json_path;
  gcx::RunBudget budget;
  size_t shards = 1;
  bool follow = false;
  int input_fd = -1;
  bool trace = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      Help(argv[0]);
      return 0;
    } else if (arg == "-q" || arg == "--query") {
      if (++i >= argc) return Usage(argv[0]);
      // A -q argument names a query file when one exists; otherwise it is
      // inline query text. An argument that *looks* like a file path (inline
      // queries always start with '<') but cannot be read is reported as
      // such instead of being parsed as a query — a typo'd path would
      // otherwise surface as a baffling parse error on the filename.
      std::string value = argv[i];
      std::string text;
      size_t first = value.find_first_not_of(" \t\r\n");
      bool looks_inline = first != std::string::npos && value[first] == '<';
      if (ReadFile(value, &text)) {
        query_specs.push_back({text, value});
      } else if (looks_inline) {
        query_specs.push_back(
            {value, "inline query #" + std::to_string(query_specs.size() + 1)});
      } else {
        std::cerr << "cannot read query file '" << value << "'\n";
        return 1;
      }
    } else if (arg == "-o") {
      if (++i >= argc) return Usage(argv[0]);
      output_path = argv[i];
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--project-only") {
      project_only = true;
    } else if (arg == "--stats") {
      stats_flag = true;
    } else if (arg == "--cache-stats") {
      cache_stats_flag = true;
    } else if (arg == "--admission") {
      admission_flag = true;
    } else if (arg.rfind("--admission-batch=", 0) == 0) {
      admission_flag = true;
      long v = std::atol(arg.c_str() + std::strlen("--admission-batch="));
      if (v < 1) {
        std::cerr << "--admission-batch needs a positive count\n";
        return 2;
      }
      admission_batch = static_cast<size_t>(v);
    } else if (arg.rfind("--admission-memory=", 0) == 0) {
      admission_flag = true;
      long long v = std::atoll(arg.c_str() + std::strlen("--admission-memory="));
      if (v < 0) {
        std::cerr << "--admission-memory needs a non-negative event count\n";
        return 2;
      }
      admission_memory = static_cast<uint64_t>(v);
    } else if (arg == "--admission-serial") {
      admission_flag = true;
      admission_serial = true;
    } else if (arg == "--admission-adaptive") {
      admission_flag = true;
      admission_adaptive = true;
    } else if (arg.rfind("--admission-arena-budget=", 0) == 0) {
      admission_flag = true;
      admission_adaptive = true;
      long long v =
          std::atoll(arg.c_str() + std::strlen("--admission-arena-budget="));
      if (v < 0) {
        std::cerr << "--admission-arena-budget needs a non-negative byte "
                     "count\n";
        return 2;
      }
      admission_arena_budget = static_cast<uint64_t>(v);
    } else if (arg.rfind("--metrics-json=", 0) == 0) {
      metrics_json_path = arg.substr(std::strlen("--metrics-json="));
      if (metrics_json_path.empty()) {
        std::cerr << "--metrics-json needs a file path or '-'\n";
        return 2;
      }
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      long long v = std::atoll(arg.c_str() + std::strlen("--deadline-ms="));
      if (v < 0) {
        std::cerr << "--deadline-ms needs a non-negative millisecond count\n";
        return 2;
      }
      budget.deadline_ms = static_cast<uint64_t>(v);
    } else if (arg.rfind("--max-arena-bytes=", 0) == 0) {
      long long v = std::atoll(arg.c_str() + std::strlen("--max-arena-bytes="));
      if (v < 0) {
        std::cerr << "--max-arena-bytes needs a non-negative byte count\n";
        return 2;
      }
      budget.max_arena_bytes = static_cast<uint64_t>(v);
    } else if (arg.rfind("--max-output-bytes=", 0) == 0) {
      long long v =
          std::atoll(arg.c_str() + std::strlen("--max-output-bytes="));
      if (v < 0) {
        std::cerr << "--max-output-bytes needs a non-negative byte count\n";
        return 2;
      }
      budget.max_output_bytes = static_cast<uint64_t>(v);
    } else if (arg.rfind("--shards=", 0) == 0) {
      long v = std::atol(arg.c_str() + std::strlen("--shards="));
      if (v < 1) {
        std::cerr << "--shards needs a positive count\n";
        return 2;
      }
      shards = static_cast<size_t>(v);
    } else if (arg == "--follow") {
      follow = true;
    } else if (arg.rfind("--input-fd=", 0) == 0) {
      // strtol + endptr, not atol: a misparse here would silently select
      // descriptor 0 and read the terminal instead of failing.
      const char* value = arg.c_str() + std::strlen("--input-fd=");
      char* end = nullptr;
      long v = std::strtol(value, &end, 10);
      if (end == value || *end != '\0' || v < 0) {
        std::cerr << "--input-fd needs a non-negative descriptor\n";
        return 2;
      }
      input_fd = static_cast<int>(v);
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--no-gc") {
      options.enable_gc = false;
    } else if (arg == "--no-aggregate") {
      options.aggregate_roles = false;
    } else if (arg == "--no-redundant") {
      options.eliminate_redundant_roles = false;
    } else if (arg == "--no-early") {
      options.early_updates = false;
    } else if (arg == "--keep-ws") {
      options.scanner.skip_whitespace_text = false;
    } else if (arg == "--drop-attributes") {
      options.scanner.attribute_mode =
          gcx::ScannerOptions::AttributeMode::kDiscard;
    } else if (arg.rfind("--mode=", 0) == 0) {
      std::string mode = arg.substr(7);
      if (mode == "streaming") {
        options.mode = gcx::EngineMode::kStreaming;
      } else if (mode == "project") {
        options.mode = gcx::EngineMode::kMaterializedProjection;
      } else if (mode == "dom") {
        options.mode = gcx::EngineMode::kNaiveDom;
      } else {
        std::cerr << "unknown mode '" << mode << "'\n";
        return 2;
      }
    } else if (arg.rfind("-", 0) == 0 && arg != "-") {
      std::cerr << "unknown option '" << arg << "'\n";
      return Usage(argv[0]);
    } else if (query_specs.empty() && query_path.empty()) {
      query_path = arg;
    } else if (input_path.empty()) {
      input_path = arg;
    } else {
      return Usage(argv[0]);
    }
  }

  if (query_specs.empty() && query_path.empty()) return Usage(argv[0]);
  if (!query_path.empty()) {
    std::string text;
    if (!ReadFile(query_path, &text)) {
      std::cerr << "cannot read query file '" << query_path << "'\n";
      return 1;
    }
    query_specs.insert(query_specs.begin(), {text, query_path});
  }

  // All compilations go through one process-local cache: repeated -q texts
  // (and formatting variants of the same query) compile exactly once.
  gcx::QueryCache cache;
  auto print_cache_stats = [&] {
    if (!cache_stats_flag) return;
    gcx::QueryCacheStats s = cache.stats();
    std::cerr << "cache: lookups=" << s.lookups << " hits=" << s.hits
              << " canonical_hits=" << s.canonical_hits
              << " misses=" << s.misses << " compiles=" << s.compiles
              << " errors=" << s.compile_errors
              << " negative_hits=" << s.negative_hits
              << " negative_entries=" << s.negative_entries
              << " coalesced=" << s.coalesced
              << " evictions=" << s.evictions << " entries=" << s.entries
              << " capacity=" << s.capacity
              << " bytes=" << s.bytes_resident
              << " max_bytes=" << s.max_bytes << "\n";
  };
  // One cumulative snapshot of the process-wide registry, written after the
  // run (every engine path and the cache/admission collectors publish into
  // it). Returns false on an unwritable target.
  auto dump_metrics = [&]() -> bool {
    if (metrics_json_path.empty()) return true;
    std::string json = gcx::MetricsRegistry::Global().SnapshotJson();
    if (metrics_json_path == "-") {
      std::cout << json;
      return true;
    }
    std::ofstream file(metrics_json_path,
                       std::ios::binary | std::ios::trunc);
    if (!file) {
      std::cerr << "cannot write metrics file '" << metrics_json_path
                << "'\n";
      return false;
    }
    file << json;
    return true;
  };
  // Runtime-failure exit: budget trips (deadline/resource) get their own
  // exit code so callers can tell a shed/timed-out run from a hard error.
  // Metrics are still dumped — a tripped run's robustness.* counters are
  // exactly what a monitoring caller wants to see.
  auto fail_exit = [&](const gcx::Status& status) -> int {
    std::cerr << "error: " << status.ToString() << "\n";
    print_cache_stats();
    dump_metrics();
    return gcx::IsBudgetError(status) ? 4 : 1;
  };

  // Compile everything before running anything: a malformed query fails the
  // whole invocation cleanly — no query of the batch has produced output
  // yet, and the diagnostic names the offending submission. The admission
  // path skips this loop (Submit compiles through the same cache and is
  // rejected before Run executes anything), so --cache-stats reflects one
  // lookup per submission there.
  std::vector<gcx::CompiledQuery> compiled_queries;
  if (!admission_flag || explain) {
    for (size_t i = 0; i < query_specs.size(); ++i) {
      auto compiled = cache.GetOrCompile(query_specs[i].text, options);
      if (!compiled.ok()) {
        std::cerr << "compile error in query " << (i + 1) << " of "
                  << query_specs.size() << " (" << query_specs[i].label
                  << "): " << compiled.status().ToString() << "\n";
        print_cache_stats();
        return 3;
      }
      compiled_queries.push_back(std::move(compiled).value());
    }
  }
  if (explain) {
    for (const gcx::CompiledQuery& compiled : compiled_queries) {
      std::cout << compiled.Explain();
    }
    return 0;
  }

  // Input source: open descriptor, non-blocking stream (--follow), file
  // (streamed) or stdin.
  std::unique_ptr<gcx::ByteSource> source;
  std::ifstream input_file;
  if (input_fd >= 0) {
    if (!input_path.empty() && input_path != "-") {
      std::cerr << "--input-fd and an input file are mutually exclusive\n";
      return 2;
    }
    source = std::make_unique<gcx::FdSource>(input_fd);
  } else if (follow) {
    if (input_path.empty() || input_path == "-") {
      std::cerr << "--follow needs an input path (FIFO or device)\n";
      return 2;
    }
    auto opened = gcx::FdSource::Open(input_path);
    if (!opened.ok()) {
      std::cerr << opened.status().ToString() << "\n";
      return 1;
    }
    source = std::move(opened).value();
  } else if (input_path.empty() || input_path == "-") {
    source = std::make_unique<gcx::IstreamSource>(&std::cin);
  } else {
    input_file.open(input_path, std::ios::binary);
    if (!input_file) {
      std::cerr << "cannot read input file '" << input_path << "'\n";
      return 1;
    }
    source = std::make_unique<gcx::IstreamSource>(&input_file);
  }

  std::ofstream output_file;
  std::ostream* out = &std::cout;
  if (!output_path.empty()) {
    output_file.open(output_path, std::ios::binary);
    if (!output_file) {
      std::cerr << "cannot write output file '" << output_path << "'\n";
      return 1;
    }
    out = &output_file;
  }

  gcx::Engine engine;
  if (trace) {
    engine.set_trace([](const gcx::XmlEvent& event,
                        const gcx::BufferTree& buffer,
                        const gcx::SymbolTable& tags) {
      std::cerr << "-- ";
      switch (event.kind) {
        case gcx::XmlEvent::Kind::kStartElement:
          std::cerr << "<" << event.name() << ">";
          break;
        case gcx::XmlEvent::Kind::kEndElement:
          std::cerr << "</" << event.name() << ">";
          break;
        case gcx::XmlEvent::Kind::kText:
          std::cerr << "text(" << event.text.size() << " bytes)";
          break;
        case gcx::XmlEvent::Kind::kEndOfDocument:
          std::cerr << "end-of-document";
          break;
      }
      std::cerr << "\n" << buffer.Dump(tags);
    });
  }

  if (admission_flag) {
    // Admission path: requests go through the admission controller, which
    // groups them into batches under the configured limits. One document,
    // one option set → one group; the controller still enforces the
    // batch-size/memory cuts a server deployment would see.
    if (project_only || trace) {
      std::cerr << "--project-only/--trace are single-query options\n";
      return 2;
    }
    gcx::AdmissionLimits limits;
    limits.max_batch_queries = admission_batch;
    limits.max_replay_log_events = admission_memory;
    limits.interleave = !admission_serial;
    limits.shards = shards;
    limits.adaptive = admission_adaptive;
    limits.adaptive_arena_budget_bytes = admission_arena_budget;
    limits.budget = budget;
    gcx::AdmissionController controller(&cache, limits);
    std::error_code ec;
    if (follow || input_fd >= 0) {
      // Streamed input: hand the single open source to the first batch (the
      // scheduler parks it across stalls); a stream cannot be re-scanned,
      // so a second batch over it fails cleanly.
      auto shared = std::make_shared<std::unique_ptr<gcx::ByteSource>>(
          std::move(source));
      controller.RegisterDocumentAsync(
          "doc", [shared]() -> gcx::Result<std::unique_ptr<gcx::ByteSource>> {
            if (*shared == nullptr) {
              return gcx::IoError(
                  "streamed input (--follow/--input-fd) supports one batch; "
                  "raise --admission-batch or use a regular file");
            }
            return std::move(*shared);
          });
    } else if (!input_path.empty() && input_path != "-" && shards <= 1 &&
               std::filesystem::is_regular_file(input_path, ec)) {
      // Regular file: re-open per batch (a group may need several scans).
      std::string path = input_path;
      controller.RegisterDocument("doc", [path] {
        return std::make_unique<OwningFileSource>(path);
      });
    } else {
      // stdin and other non-regular inputs cannot be re-opened per batch:
      // materialize the already-open source once. With --shards a regular
      // file is materialized too — the sharded scan path needs the stored
      // bytes, not a re-openable stream.
      std::string document;
      gcx::Status drained = gcx::ReadAll(source.get(), &document);
      if (!drained.ok()) {
        std::cerr << "error: " << drained.ToString() << "\n";
        return 1;
      }
      controller.RegisterDocument("doc", std::move(document));
    }

    std::vector<std::unique_ptr<SeparatedBuf>> bufs;
    std::vector<std::unique_ptr<std::ostream>> streams;
    for (size_t i = 0; i < query_specs.size(); ++i) {
      bufs.push_back(std::make_unique<SeparatedBuf>(out, i > 0));
      streams.push_back(std::make_unique<std::ostream>(bufs.back().get()));
      gcx::Status admitted = controller.Submit(query_specs[i].text, options,
                                               "doc", streams.back().get());
      if (!admitted.ok()) {
        std::cerr << "admission rejected query " << (i + 1) << " ("
                  << query_specs[i].label << "): " << admitted.ToString()
                  << "\n";
        print_cache_stats();
        return 1;
      }
    }
    auto run = controller.Run();
    if (!run.ok()) return fail_exit(run.status());
    *out << "\n";
    if (stats_flag) {
      gcx::AdmissionStats a = controller.stats();
      std::cerr << "admission: submitted=" << a.submitted
                << " admitted=" << a.admitted << " rejected=" << a.rejected
                << " batches=" << a.batches_formed << " solo=" << a.solo_runs
                << " sharded=" << a.sharded_runs
                << " splits_size=" << a.splits_by_size
                << " splits_memory=" << a.splits_by_memory
                << " replay_peak=" << a.replay_log_peak_observed
                << " est_events_per_query=" << a.events_per_query_estimate
                << " parked=" << a.batches_parked
                << " resumes=" << a.batch_resumes << "\n"
                << "run: queries=" << run->queries
                << " batches=" << run->batches
                << " scan_passes=" << run->scan_passes
                << " bytes_scanned=" << run->bytes_scanned
                << " replay_arena_peak=" << run->replay_arena_peak_bytes
                << " stalls=" << run->stalls << "\n";
      if (admission_adaptive) {
        std::cerr << "adaptive: batch_cap=" << a.adaptive_batch_cap
                  << " shards=" << a.adaptive_shards
                  << " increases=" << a.adaptive_increases
                  << " decreases_stalls=" << a.adaptive_decreases_by_stalls
                  << " decreases_memory=" << a.adaptive_decreases_by_memory
                  << " shard_decreases=" << a.adaptive_shard_decreases
                  << "\n";
      }
    }
    print_cache_stats();
    if (!dump_metrics()) return 1;
    if (run->queries_shed > 0) {
      // Degradation shed some queries rather than failing the run: the
      // surviving results were emitted, but the invocation as a whole did
      // not complete — report the first typed rejection and exit 4.
      std::cerr << "error: " << run->first_shed_error.ToString() << " ("
                << run->queries_shed << " of " << query_specs.size()
                << " queries shed)\n";
      return 4;
    }
    return 0;
  }

  if (compiled_queries.size() > 1 || shards > 1) {
    // Multi-query batch (one shared document scan, N results in order)
    // and/or sharded execution — --shards routes even a single query
    // through the batch engine's sharded path.
    if (project_only || trace) {
      std::cerr << "--project-only/--trace are single-query options\n";
      return 2;
    }
    std::vector<const gcx::CompiledQuery*> batch;
    for (const gcx::CompiledQuery& compiled : compiled_queries) {
      batch.push_back(&compiled);
    }
    gcx::MultiQueryEngine multi_engine;
    std::unique_ptr<gcx::RunGovernor> governor;
    if (budget.any()) {
      governor = std::make_unique<gcx::RunGovernor>(budget);
      multi_engine.set_governor(governor.get());
    }
    // Stream each result straight to `out`: query i>0's wrapper inserts the
    // newline separator before its first byte.
    std::vector<std::unique_ptr<SeparatedBuf>> bufs;
    std::vector<std::unique_ptr<std::ostream>> streams;
    std::vector<std::ostream*> outs;
    for (size_t i = 0; i < batch.size(); ++i) {
      bufs.push_back(std::make_unique<SeparatedBuf>(out, i > 0));
      streams.push_back(std::make_unique<std::ostream>(bufs.back().get()));
      outs.push_back(streams.back().get());
    }
    gcx::Result<gcx::MultiQueryStats> batch_stats =
        gcx::EvalError("unreachable");
    std::string document;
    if (shards > 1) {
      // Sharding needs the stored bytes: materialize, then fan the scan
      // out (ExecuteSharded falls back to one scan if the planner declines).
      gcx::Status drained = gcx::ReadAll(source.get(), &document);
      if (!drained.ok()) {
        std::cerr << "error: " << drained.ToString() << "\n";
        print_cache_stats();
        return 1;
      }
      gcx::ShardOptions shard_options;
      shard_options.shards = shards;
      batch_stats =
          multi_engine.ExecuteSharded(batch, document, outs, shard_options);
    } else {
      batch_stats = multi_engine.Execute(batch, std::move(source), outs);
    }
    if (!batch_stats.ok()) return fail_exit(batch_stats.status());
    *out << "\n";
    if (stats_flag) {
      const gcx::SharedScanStats& shared = batch_stats->shared;
      std::cerr << "queries:           " << batch.size() << "\n"
                << "scan passes:       " << shared.scan_passes << "\n"
                << "shards:            " << shared.shards << "\n"
                << "shard-local:       " << shared.shard_local_queries
                << " of " << batch.size() << " queries\n"
                << "bytes scanned:     " << shared.bytes_scanned << "\n"
                << "events scanned:    " << shared.events_scanned << "\n"
                << "events forwarded:  " << shared.events_forwarded << "\n"
                << "events skipped:    " << shared.events_shared_skipped
                << " (shared prefilter, " << shared.shared_subtrees_skipped
                << " subtrees)\n"
                << "events demuxed:    " << shared.events_demuxed << "\n"
                << "replay log peak:   " << shared.replay_log_peak
                << " events, " << shared.replay_arena_peak_bytes
                << " arena bytes\n"
                << "merged DFA states: " << shared.merged_dfa_states << "\n"
                << "projection paths:  " << batch_stats->projection.union_paths
                << " union / " << batch_stats->projection.shared_paths
                << " shared / " << batch_stats->projection.private_paths
                << " private\n";
      if (!batch_stats->per_shard_arena_peak_bytes.empty()) {
        std::cerr << "shard arena peaks:";
        for (uint64_t peak : batch_stats->per_shard_arena_peak_bytes) {
          std::cerr << " " << peak;
        }
        std::cerr << " bytes\n";
      }
      for (size_t i = 0; i < batch_stats->per_query.size(); ++i) {
        const gcx::ExecStats& q = batch_stats->per_query[i];
        std::cerr << "query " << i << ": events "
                  << q.events_delivered << ", peak buffer bytes "
                  << q.peak_bytes << ", output bytes " << q.output_bytes
                  << ", projected "
                  << (q.projector.elements_kept + q.projector.text_kept)
                  << " kept / "
                  << (q.projector.elements_skipped + q.projector.text_skipped)
                  << " skipped, wall " << q.wall_seconds << " s\n";
      }
    }
    print_cache_stats();
    if (!dump_metrics()) return 1;
    return 0;
  }

  std::unique_ptr<gcx::RunGovernor> governor;
  if (budget.any()) {
    governor = std::make_unique<gcx::RunGovernor>(budget);
    engine.set_governor(governor.get());
  }
  gcx::Result<gcx::ExecStats> stats = gcx::EvalError("unreachable");
  if (project_only) {
    // Materialize the whole input (projection needs a string view here).
    std::string document;
    gcx::Status drained = gcx::ReadAll(source.get(), &document);
    if (!drained.ok()) {
      std::cerr << "error: " << drained.ToString() << "\n";
      return 1;
    }
    stats = engine.Project(compiled_queries.front(), document, out);
  } else {
    stats = engine.Execute(compiled_queries.front(), std::move(source), out);
  }
  if (!stats.ok()) return fail_exit(stats.status());
  *out << "\n";

  if (stats_flag) {
    const gcx::ProjectorStats& p = stats->projector;
    std::cerr << "input bytes:       " << stats->input_bytes << "\n"
              << "output bytes:      " << stats->output_bytes << "\n"
              << "wall time:         " << stats->wall_seconds << " s\n"
              << "events read:       " << p.events_read << "\n"
              << "elements kept:     " << p.elements_kept << " of "
              << p.elements_read << " (" << p.elements_skipped
              << " skipped)\n"
              << "text kept:         " << p.text_kept << " (" << p.text_skipped
              << " skipped)\n"
              << "peak buffer bytes: " << stats->peak_bytes << "\n"
              << "peak buffer nodes: " << stats->buffer.nodes_peak << "\n"
              << "nodes buffered:    " << stats->buffer.nodes_created << "\n"
              << "nodes purged:      " << stats->buffer.nodes_purged << "\n"
              << "roles assigned:    " << stats->buffer.roles_assigned << "\n"
              << "roles removed:     " << stats->buffer.roles_removed << "\n"
              << "GC runs:           " << stats->buffer.gc_runs << "\n"
              << "text arena peak:   " << stats->buffer.text_arena_peak_bytes
              << " bytes\n"
              << "scanner stalls:    " << stats->stalls << "\n"
              << "DFA states:        " << stats->dfa_states << "\n";
  }
  print_cache_stats();
  if (!dump_metrics()) return 1;
  return 0;
}
